package harness

import (
	"bytes"
	"strings"
	"testing"
)

// flatBaseline builds a single-repeat baseline the way a tracked
// BENCH_n.json loads.
func flatBaseline(entries map[string][2]float64) *Baseline {
	b := &Baseline{Repeats: 1}
	for name, v := range entries {
		b.Summaries = append(b.Summaries, Summary{
			Name: name, Repeats: 1,
			NsOp:     point(v[0]),
			AllocsOp: point(v[1]),
			BOp:      point(v[1] * 64),
			HasMem:   true,
		})
	}
	return b
}

// measured builds a fresh-run summary with the given repeat count and
// optional CV on ns/op.
func measured(name string, ns, allocs float64, repeats int, nsCV float64) Summary {
	s := Summary{
		Name: name, Repeats: repeats, HasMem: true,
		NsOp:     Stat{Mean: ns, Min: ns, Max: ns, CV: nsCV, Std: ns * nsCV},
		AllocsOp: point(allocs),
		BOp:      point(allocs * 64),
	}
	return s
}

func deltaByName(t *testing.T, deltas []Delta, name string) Delta {
	t.Helper()
	for _, d := range deltas {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("no delta for %s in %+v", name, deltas)
	return Delta{}
}

// TestCompareInjectedRegression is the CI-gate proof: a synthetic 25%
// ns/op slowdown on a hot path must fail at the default 20% threshold,
// and a 25% allocs/op growth must fail at the default 10% threshold.
func TestCompareInjectedRegression(t *testing.T) {
	base := flatBaseline(map[string][2]float64{
		"p.BenchmarkHot":  {1_000_000, 1000},
		"p.BenchmarkCold": {2_000_000, 500},
	})
	cur := &Baseline{Repeats: 3, Summaries: []Summary{
		measured("p.BenchmarkHot", 1_250_000, 1000, 3, 0), // +25% wall
		measured("p.BenchmarkCold", 2_000_000, 650, 3, 0), // +30% allocs
	}}
	deltas := Compare(base, cur, CompareOptions{})
	if n := len(Failures(deltas)); n != 2 {
		t.Fatalf("failures = %d, want 2: %+v", n, deltas)
	}
	hot := deltaByName(t, deltas, "p.BenchmarkHot")
	if hot.Status != StatusRegress || !hot.Gated {
		t.Fatalf("hot delta = %+v, want gated regression", hot)
	}
	cold := deltaByName(t, deltas, "p.BenchmarkCold")
	if cold.Status != StatusRegress {
		t.Fatalf("cold delta = %+v, want alloc regression", cold)
	}
	// The report must name the regressions.
	var buf bytes.Buffer
	WriteReport(&buf, deltas)
	if !strings.Contains(buf.String(), "regression") {
		t.Fatalf("report lacks regression marker:\n%s", buf.String())
	}
}

// TestCompareNoiseDoesNotFlake: measurements inside the threshold, and
// measurements whose spread (CV) explains the excursion, must pass — the
// gate is noise-aware, not a tripwire.
func TestCompareNoiseDoesNotFlake(t *testing.T) {
	base := flatBaseline(map[string][2]float64{"p.BenchmarkHot": {1_000_000, 1000}})

	// +15% wall clock: inside the 20% threshold.
	cur := &Baseline{Repeats: 3, Summaries: []Summary{measured("p.BenchmarkHot", 1_150_000, 1000, 3, 0)}}
	if fails := Failures(Compare(base, cur, CompareOptions{})); len(fails) != 0 {
		t.Fatalf("+15%% failed the 20%% gate: %+v", fails)
	}

	// +25% wall clock but the fresh run wobbles at CV=8%: the widened
	// limit (20% + 8%) absorbs it.
	noisy := &Baseline{Repeats: 3, Summaries: []Summary{measured("p.BenchmarkHot", 1_250_000, 1000, 3, 0.08)}}
	if fails := Failures(Compare(base, noisy, CompareOptions{})); len(fails) != 0 {
		t.Fatalf("noise-widened comparison flaked: %+v", fails)
	}

	// A noisy baseline widens the limit the same way.
	noisyBase := &Baseline{Repeats: 5, Summaries: []Summary{measured("p.BenchmarkHot", 1_000_000, 1000, 5, 0.10)}}
	cur25 := &Baseline{Repeats: 3, Summaries: []Summary{measured("p.BenchmarkHot", 1_250_000, 1000, 3, 0)}}
	if fails := Failures(Compare(noisyBase, cur25, CompareOptions{})); len(fails) != 0 {
		t.Fatalf("baseline CV not honored: %+v", fails)
	}

	// +8% allocs: inside the 10% threshold.
	allocOK := &Baseline{Repeats: 3, Summaries: []Summary{measured("p.BenchmarkHot", 1_000_000, 1080, 3, 0)}}
	if fails := Failures(Compare(base, allocOK, CompareOptions{})); len(fails) != 0 {
		t.Fatalf("+8%% allocs failed the 10%% gate: %+v", fails)
	}
}

// TestCompareRepeatGate: a wall-clock regression from fewer than 3
// repeats must not gate (one noisy run is not evidence), but an alloc
// regression gates even from a single repeat.
func TestCompareRepeatGate(t *testing.T) {
	base := flatBaseline(map[string][2]float64{"p.BenchmarkHot": {1_000_000, 1000}})
	oneRep := &Baseline{Repeats: 1, Summaries: []Summary{measured("p.BenchmarkHot", 1_500_000, 1000, 1, 0)}}
	if fails := Failures(Compare(base, oneRep, CompareOptions{})); len(fails) != 0 {
		t.Fatalf("single-repeat wall clock gated: %+v", fails)
	}
	oneRepAlloc := &Baseline{Repeats: 1, Summaries: []Summary{measured("p.BenchmarkHot", 1_000_000, 2000, 1, 0)}}
	fails := Failures(Compare(base, oneRepAlloc, CompareOptions{}))
	if len(fails) != 1 {
		t.Fatalf("single-repeat alloc regression did not gate: %+v", fails)
	}
}

func TestCompareStatuses(t *testing.T) {
	base := flatBaseline(map[string][2]float64{
		"p.BenchmarkGone":    {1_000_000, 1000},
		"p.BenchmarkSkipped": {1_000_000, 1000},
		"p.BenchmarkFaster":  {1_000_000, 1000},
	})
	cur := &Baseline{
		Repeats: 3,
		Summaries: []Summary{
			measured("p.BenchmarkFaster", 400_000, 500, 3, 0),
			measured("p.BenchmarkNew", 100, 10, 3, 0),
		},
		Skipped: []Skip{{Name: "p.BenchmarkSkipped", Reason: "GOMAXPROCS=1 < workers=8"}},
	}
	deltas := Compare(base, cur, CompareOptions{})
	if got := deltaByName(t, deltas, "p.BenchmarkGone").Status; got != StatusMissing {
		t.Errorf("gone = %s, want missing", got)
	}
	if got := deltaByName(t, deltas, "p.BenchmarkSkipped").Status; got != StatusSkipped {
		t.Errorf("skipped = %s, want skipped", got)
	}
	if got := deltaByName(t, deltas, "p.BenchmarkFaster").Status; got != StatusImproved {
		t.Errorf("faster = %s, want improved", got)
	}
	if got := deltaByName(t, deltas, "p.BenchmarkNew").Status; got != StatusNew {
		t.Errorf("new = %s, want new", got)
	}
	// None of these is a gating failure.
	if fails := Failures(deltas); len(fails) != 0 {
		t.Fatalf("status-only deltas gated: %+v", fails)
	}
}

// TestCompareGateSetAndOverrides: only named benchmarks gate when a gate
// set is supplied, and per-benchmark tolerances override the defaults.
func TestCompareGateSetAndOverrides(t *testing.T) {
	base := flatBaseline(map[string][2]float64{
		"p.BenchmarkHot":  {1_000_000, 1000},
		"p.BenchmarkInfo": {1_000_000, 1000},
	})
	cur := &Baseline{Repeats: 3, Summaries: []Summary{
		measured("p.BenchmarkHot", 1_300_000, 1000, 3, 0),
		measured("p.BenchmarkInfo", 2_000_000, 2000, 3, 0),
	}}
	opts := CompareOptions{Gate: map[string]bool{"p.BenchmarkHot": true}}
	fails := Failures(Compare(base, cur, opts))
	if len(fails) != 1 || fails[0].Name != "p.BenchmarkHot" {
		t.Fatalf("gate set not honored: %+v", fails)
	}

	// A 50% ns tolerance override lets the +30% hot path pass.
	opts.Overrides = map[string]Tolerance{"p.BenchmarkHot": {Ns: 0.50}}
	if fails := Failures(Compare(base, cur, opts)); len(fails) != 0 {
		t.Fatalf("tolerance override not honored: %+v", fails)
	}
}

// TestSelfComparePasses: a baseline compared against itself must never
// fail — the identity case the CI gate's self-test asserts.
func TestSelfComparePasses(t *testing.T) {
	base := flatBaseline(map[string][2]float64{
		"p.BenchmarkA": {1_000_000, 1000},
		"p.BenchmarkB": {50_000, 12},
	})
	if fails := Failures(Compare(base, base, CompareOptions{})); len(fails) != 0 {
		t.Fatalf("self-comparison failed: %+v", fails)
	}
}

// TestScaleForSelfTest pins the helper the CLI self-test uses to inject
// a synthetic slowdown.
func TestScaleForSelfTest(t *testing.T) {
	base := flatBaseline(map[string][2]float64{"p.BenchmarkA": {1_000_000, 1000}})
	scaled := ScaleBaseline(base, 1.25, 1.25)
	fails := Failures(Compare(base, scaled, CompareOptions{MinGateRepeats: 1}))
	if len(fails) != 1 {
		t.Fatalf("injected 25%% slowdown not caught: %+v", fails)
	}
	if base.Summaries[0].NsOp.Mean != 1_000_000 {
		t.Fatal("ScaleBaseline mutated its input")
	}
}
