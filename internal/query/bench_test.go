package query

import (
	"testing"

	"secreta/internal/gen"
	"secreta/internal/generalize"
)

func BenchmarkAREOnGeneralized(b *testing.B) {
	ds := gen.Census(gen.Config{Records: 2000, Items: 20, Seed: 3})
	hs, err := gen.Hierarchies(ds, 4)
	if err != nil {
		b.Fatal(err)
	}
	ih, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		b.Fatal(err)
	}
	qis, err := ds.QIIndices(nil)
	if err != nil {
		b.Fatal(err)
	}
	levels := make([]int, len(qis))
	for i, q := range qis {
		levels[i] = hs[ds.Attrs[q].Name].Height() / 2
	}
	anon, err := generalize.FullDomain(ds, hs, qis, levels)
	if err != nil {
		b.Fatal(err)
	}
	w, err := Generate(ds, GenOptions{Queries: 50, Dims: 2, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ARE(w, ds, anon, hs, ih); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateWorkload(b *testing.B) {
	ds := gen.Census(gen.Config{Records: 2000, Items: 20, Seed: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(ds, GenOptions{Queries: 100, Dims: 2, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
