package query

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
)

func data(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds := dataset.New([]dataset.Attribute{
		{Name: "Age", Kind: dataset.Numeric},
		{Name: "Gender", Kind: dataset.Categorical},
	}, "T")
	for _, r := range []dataset.Record{
		{Values: []string{"25", "M"}, Items: []string{"a", "b"}},
		{Values: []string{"27", "F"}, Items: []string{"a"}},
		{Values: []string{"31", "M"}, Items: []string{"c"}},
		{Values: []string{"47", "F"}, Items: []string{"b"}},
	} {
		if err := ds.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func hset(t testing.TB) (generalize.Set, *hierarchy.Hierarchy) {
	t.Helper()
	age, err := hierarchy.NewBuilder("Age").
		Add("Any", "[20-29]").Add("Any", "[30-49]").
		Add("[20-29]", "25").Add("[20-29]", "27").
		Add("[30-49]", "31").Add("[30-49]", "47").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	items, err := hierarchy.NewBuilder("T").
		Add("All", "ab").Add("All", "c").
		Add("ab", "a").Add("ab", "b").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return generalize.Set{"Age": age}, items
}

func TestCountExact(t *testing.T) {
	ds := data(t)
	q := Query{Predicates: []Predicate{{Attr: "Age", Lo: 20, Hi: 30, Numeric: true}}}
	c, err := q.CountExact(ds)
	if err != nil || c != 2 {
		t.Errorf("range count = %v, %v", c, err)
	}
	q = Query{Predicates: []Predicate{{Attr: "Gender", Values: []string{"M"}}}}
	c, _ = q.CountExact(ds)
	if c != 2 {
		t.Errorf("point count = %v", c)
	}
	q = Query{Predicates: []Predicate{{Attr: "Gender", Values: []string{"F"}}}, Items: []string{"a"}}
	c, _ = q.CountExact(ds)
	if c != 1 {
		t.Errorf("item count = %v", c)
	}
	q = Query{Predicates: []Predicate{{Attr: "Nope", Values: []string{"x"}}}}
	if _, err := q.CountExact(ds); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestCountEstimateExactOnLeaves(t *testing.T) {
	ds := data(t)
	hs, itemH := hset(t)
	q := Query{Predicates: []Predicate{{Attr: "Age", Lo: 20, Hi: 30, Numeric: true}}, Items: []string{"a"}}
	exact, err := q.CountExact(ds)
	if err != nil {
		t.Fatal(err)
	}
	est, err := q.CountEstimate(ds, hs, itemH)
	if err != nil {
		t.Fatal(err)
	}
	if exact != est {
		t.Errorf("estimate on original = %v, exact = %v", est, exact)
	}
}

func TestCountEstimateGeneralized(t *testing.T) {
	ds := data(t)
	hs, itemH := hset(t)
	anon, err := generalize.FullDomain(ds, hs, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	// Query Age in [20,26]: covers leaf 25 only. Records generalized to
	// [20-29] (2 of them) contribute 1/2 each.
	q := Query{Predicates: []Predicate{{Attr: "Age", Lo: 20, Hi: 26, Numeric: true}}}
	est, err := q.CountEstimate(anon, hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-1.0) > 1e-9 {
		t.Errorf("estimate = %v, want 1", est)
	}
	// Suppressed records contribute 0.
	generalize.SuppressRecord(anon, []int{0}, 0)
	est, _ = q.CountEstimate(anon, hs, nil)
	if math.Abs(est-0.5) > 1e-9 {
		t.Errorf("estimate after suppression = %v, want 0.5", est)
	}
	// Generalized items: basket {ab} covering queried a gives 1/2.
	cut := hierarchy.NewCut(itemH)
	if err := cut.Specialize("All"); err != nil {
		t.Fatal(err)
	}
	anonI, err := generalize.ApplyItemCut(ds, cut)
	if err != nil {
		t.Fatal(err)
	}
	qi := Query{Items: []string{"a"}}
	est, err = qi.CountEstimate(anonI, hs, itemH)
	if err != nil {
		t.Fatal(err)
	}
	// Records 0,1 have {ab} -> 1/2 each; record 3 has {ab} -> 1/2; record 2 has {c} -> 0.
	if math.Abs(est-1.5) > 1e-9 {
		t.Errorf("item estimate = %v, want 1.5", est)
	}
}

func TestARE(t *testing.T) {
	ds := data(t)
	hs, itemH := hset(t)
	w := &Workload{Queries: []Query{
		{Predicates: []Predicate{{Attr: "Age", Lo: 20, Hi: 30, Numeric: true}}},
		{Predicates: []Predicate{{Attr: "Gender", Values: []string{"M"}}}},
	}}
	are, err := ARE(w, ds, ds, hs, itemH)
	if err != nil || are != 0 {
		t.Errorf("ARE(identity) = %v, %v", are, err)
	}
	// Skew the age distribution so the uniform-spread estimate cannot be
	// exact after full generalization.
	if err := ds.AddRecord(dataset.Record{Values: []string{"25", "M"}, Items: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	w = &Workload{Queries: []Query{
		{Predicates: []Predicate{{Attr: "Age", Lo: 20, Hi: 26, Numeric: true}}},
	}}
	anon, err := generalize.FullDomain(ds, hs, []int{0}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	are, err = ARE(w, ds, anon, hs, itemH)
	if err != nil {
		t.Fatal(err)
	}
	if are <= 0 {
		t.Errorf("ARE(generalized) = %v, want > 0", are)
	}
	if _, err := ARE(&Workload{}, ds, ds, hs, itemH); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestAREMonotoneInGeneralization(t *testing.T) {
	ds := data(t)
	hs, _ := hset(t)
	w := &Workload{Queries: []Query{
		{Predicates: []Predicate{{Attr: "Age", Lo: 20, Hi: 26, Numeric: true}}},
		{Predicates: []Predicate{{Attr: "Age", Lo: 30, Hi: 40, Numeric: true}}},
	}}
	lvl1, err := generalize.FullDomain(ds, hs, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	lvl2, err := generalize.FullDomain(ds, hs, []int{0}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := ARE(w, ds, lvl1, hs, nil)
	a2, _ := ARE(w, ds, lvl2, hs, nil)
	if a2 < a1 {
		t.Errorf("ARE decreased with more generalization: %v -> %v", a1, a2)
	}
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery("Age=[20,40];Gender=M|F;items=a|b")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Predicates) != 2 || len(q.Items) != 2 {
		t.Errorf("parsed = %+v", q)
	}
	if !q.Predicates[0].Numeric || q.Predicates[0].Lo != 20 || q.Predicates[0].Hi != 40 {
		t.Errorf("range = %+v", q.Predicates[0])
	}
	// Reversed bounds are normalized.
	q, err = ParseQuery("Age=[40,20]")
	if err != nil || q.Predicates[0].Lo != 20 {
		t.Errorf("reversed range: %+v, %v", q, err)
	}
	for _, bad := range []string{"", "Age", "Age=[x,y]", "Age=[20]", "=v"} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) accepted", bad)
		}
	}
}

func TestWorkloadRoundTrip(t *testing.T) {
	in := "# comment\nAge=[20,40];items=a\nGender=M\n\n"
	w, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	var buf bytes.Buffer
	if err := w.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.Queries[0].String() != w.Queries[0].String() {
		t.Errorf("round-trip mismatch: %v vs %v", back.Queries, w.Queries)
	}
	if _, err := Read(strings.NewReader("# only comments\n")); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestGenerate(t *testing.T) {
	ds := data(t)
	w, err := Generate(ds, GenOptions{Queries: 20, Dims: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 20 {
		t.Fatalf("generated %d queries", w.Len())
	}
	for _, q := range w.Queries {
		if len(q.Predicates) != 2 {
			t.Errorf("query dims = %d", len(q.Predicates))
		}
		if len(q.Items) != 1 {
			t.Errorf("query items = %d", len(q.Items))
		}
		if _, err := q.CountExact(ds); err != nil {
			t.Errorf("generated query invalid: %v", err)
		}
	}
	// Determinism.
	w2, _ := Generate(ds, GenOptions{Queries: 20, Dims: 2, Seed: 1})
	for i := range w.Queries {
		if w.Queries[i].String() != w2.Queries[i].String() {
			t.Fatal("generation not deterministic")
		}
	}
	// No transaction attribute: no items.
	rel := dataset.New([]dataset.Attribute{{Name: "X"}}, "")
	if err := rel.AddRecord(dataset.Record{Values: []string{"v"}}); err != nil {
		t.Fatal(err)
	}
	w3, err := Generate(rel, GenOptions{Queries: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w3.Queries {
		if len(q.Items) != 0 {
			t.Error("items generated for relational dataset")
		}
	}
	empty := dataset.New([]dataset.Attribute{{Name: "X"}}, "")
	if _, err := Generate(empty, GenOptions{}); err == nil {
		t.Error("empty dataset accepted")
	}
}
