package query

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"secreta/internal/dataset"
)

// Workload file format: one query per line; conditions separated by ';'.
//
//	Age=[20,40];Gender=M;items=milk|bread
//
// A condition is either attr=[lo,hi] (numeric range), attr=v1|v2 (value
// set), or items=i1|i2 (required items). Lines starting with '#' are
// comments.

// ParseQuery parses one query line.
func ParseQuery(line string) (Query, error) {
	var q Query
	for _, part := range strings.Split(line, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rhs, found := strings.Cut(part, "=")
		if !found {
			return Query{}, fmt.Errorf("query: condition %q lacks '='", part)
		}
		name = strings.TrimSpace(name)
		rhs = strings.TrimSpace(rhs)
		if name == "" || rhs == "" {
			return Query{}, fmt.Errorf("query: malformed condition %q", part)
		}
		if name == "items" {
			q.Items = append(q.Items, splitValues(rhs)...)
			continue
		}
		if strings.HasPrefix(rhs, "[") && strings.HasSuffix(rhs, "]") {
			body := rhs[1 : len(rhs)-1]
			loS, hiS, found := strings.Cut(body, ",")
			if !found {
				return Query{}, fmt.Errorf("query: malformed range %q", rhs)
			}
			lo, err1 := strconv.ParseFloat(strings.TrimSpace(loS), 64)
			hi, err2 := strconv.ParseFloat(strings.TrimSpace(hiS), 64)
			if err1 != nil || err2 != nil {
				return Query{}, fmt.Errorf("query: non-numeric range %q", rhs)
			}
			if lo > hi {
				lo, hi = hi, lo
			}
			q.Predicates = append(q.Predicates, Predicate{Attr: name, Lo: lo, Hi: hi, Numeric: true})
			continue
		}
		q.Predicates = append(q.Predicates, Predicate{Attr: name, Values: splitValues(rhs)})
	}
	if len(q.Predicates) == 0 && len(q.Items) == 0 {
		return Query{}, fmt.Errorf("query: empty query line")
	}
	return q, nil
}

func splitValues(s string) []string {
	parts := strings.Split(s, "|")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Read parses a workload file.
func Read(r io.Reader) (*Workload, error) {
	var w Workload
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := ParseQuery(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		w.Queries = append(w.Queries, q)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("query: empty workload")
	}
	return &w, nil
}

// Write serializes the workload, one query per line.
func (w *Workload) Write(out io.Writer) error {
	bw := bufio.NewWriter(out)
	for i := range w.Queries {
		if _, err := bw.WriteString(w.Queries[i].String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFile reads a workload from disk.
func LoadFile(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// SaveFile writes the workload to disk.
func (w *Workload) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := w.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// GenOptions tunes the random workload generator.
type GenOptions struct {
	Queries int // number of queries (default 100)
	// Dims is how many relational predicates each query carries
	// (default 2, capped at the number of attributes; -1 for none,
	// producing item-only queries).
	Dims int
	// RangeFrac is the fraction of a numeric domain each range spans
	// (default 0.2).
	RangeFrac float64
	// Items is how many transaction items each query requires (default 1
	// when the dataset has a transaction attribute, 0 otherwise).
	Items int
	// Seed makes generation reproducible.
	Seed int64
}

// Generate builds a random workload against the dataset's domains, the
// "generated automatically" path of the Queries Editor.
func Generate(ds *dataset.Dataset, opts GenOptions) (*Workload, error) {
	if opts.Queries <= 0 {
		opts.Queries = 100
	}
	if opts.Dims == 0 {
		opts.Dims = 2
	}
	if opts.Dims < 0 {
		opts.Dims = 0
	}
	if opts.Dims > len(ds.Attrs) {
		opts.Dims = len(ds.Attrs)
	}
	if opts.RangeFrac <= 0 || opts.RangeFrac > 1 {
		opts.RangeFrac = 0.2
	}
	if opts.Items == 0 && ds.HasTransaction() {
		opts.Items = 1
	}
	if !ds.HasTransaction() {
		opts.Items = 0
	}
	if len(ds.Records) == 0 {
		return nil, fmt.Errorf("query: cannot generate workload for empty dataset")
	}
	if opts.Dims == 0 && opts.Items == 0 {
		return nil, fmt.Errorf("query: generated queries would be empty (no predicates, no items)")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	domains := make([][]string, len(ds.Attrs))
	for i := range ds.Attrs {
		domains[i] = ds.Domain(i)
	}
	itemDomain := ds.ItemDomain()
	if opts.Items > 0 && len(itemDomain) == 0 {
		opts.Items = 0
	}
	var w Workload
	for qi := 0; qi < opts.Queries; qi++ {
		var q Query
		perm := rng.Perm(len(ds.Attrs))
		for _, ai := range perm[:opts.Dims] {
			attr := ds.Attrs[ai]
			dom := domains[ai]
			if len(dom) == 0 {
				continue
			}
			if attr.Kind == dataset.Numeric {
				lo, _ := strconv.ParseFloat(dom[0], 64)
				hi, _ := strconv.ParseFloat(dom[len(dom)-1], 64)
				span := (hi - lo) * opts.RangeFrac
				start := lo + rng.Float64()*(hi-lo-span)
				if hi == lo {
					start = lo
				}
				q.Predicates = append(q.Predicates, Predicate{
					Attr: attr.Name, Lo: start, Hi: start + span, Numeric: true,
				})
			} else {
				q.Predicates = append(q.Predicates, Predicate{
					Attr: attr.Name, Values: []string{dom[rng.Intn(len(dom))]},
				})
			}
		}
		seen := make(map[string]bool)
		for len(q.Items) < opts.Items && len(seen) < len(itemDomain) {
			it := itemDomain[rng.Intn(len(itemDomain))]
			if !seen[it] {
				seen[it] = true
				q.Items = append(q.Items, it)
			}
		}
		w.Queries = append(w.Queries, q)
	}
	return &w, nil
}
