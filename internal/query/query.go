// Package query implements SECRETA's Queries Editor backend: COUNT query
// workloads over relational and transaction attributes, exact evaluation on
// original data, probabilistic evaluation on generalized data, and the
// Average Relative Error (ARE) utility indicator of Xu et al. (KDD 2006),
// which SECRETA uses as its de-facto utility measure.
package query

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
)

// Predicate is one selection condition on a relational attribute: either a
// categorical value-set membership or a numeric closed range.
type Predicate struct {
	Attr    string
	Values  []string // categorical: match any of these
	Lo, Hi  float64  // numeric range, inclusive
	Numeric bool
}

// Query is a conjunctive COUNT query: all predicates must hold, and the
// transaction part must contain all listed items.
type Query struct {
	Predicates []Predicate
	Items      []string
}

// Workload is a set of queries evaluated together; ARE averages over it.
type Workload struct {
	Queries []Query
}

// Len returns the number of queries.
func (w *Workload) Len() int { return len(w.Queries) }

// CountExact evaluates the query on original (leaf-valued) data.
func (q *Query) CountExact(ds *dataset.Dataset) (float64, error) {
	idx, err := q.attrIndices(ds)
	if err != nil {
		return 0, err
	}
	count := 0.0
	for r := range ds.Records {
		m, err := q.matchExact(ds, idx, r)
		if err != nil {
			return 0, err
		}
		if m {
			count++
		}
	}
	return count, nil
}

func (q *Query) attrIndices(ds *dataset.Dataset) ([]int, error) {
	idx := make([]int, len(q.Predicates))
	for i, p := range q.Predicates {
		j := ds.AttrIndex(p.Attr)
		if j < 0 {
			return nil, fmt.Errorf("query: no attribute named %q", p.Attr)
		}
		idx[i] = j
	}
	return idx, nil
}

func (q *Query) matchExact(ds *dataset.Dataset, idx []int, r int) (bool, error) {
	rec := ds.Records[r]
	for i, p := range q.Predicates {
		v := rec.Values[idx[i]]
		if p.Numeric {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return false, fmt.Errorf("query: non-numeric value %q in attribute %q", v, p.Attr)
			}
			if f < p.Lo || f > p.Hi {
				return false, nil
			}
		} else {
			found := false
			for _, pv := range p.Values {
				if v == pv {
					found = true
					break
				}
			}
			if !found {
				return false, nil
			}
		}
	}
	for _, it := range q.Items {
		if !rec.HasItem(it) {
			return false, nil
		}
	}
	return true, nil
}

// CountEstimate evaluates the query on generalized data under the uniform
// assumption: a generalized value contributes the fraction of its covered
// leaves that satisfy the predicate; a generalized item contributes the
// probability that it stands for a queried leaf item. Suppressed records
// contribute nothing. hs supplies the hierarchy per relational attribute;
// itemH the item hierarchy (may be nil for datasets without transactions or
// mapping-based algorithms whose output keeps leaf items).
func (q *Query) CountEstimate(ds *dataset.Dataset, hs generalize.Set, itemH *hierarchy.Hierarchy) (float64, error) {
	idx, err := q.attrIndices(ds)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for r := range ds.Records {
		p, err := q.matchProbability(ds, hs, itemH, idx, r)
		if err != nil {
			return 0, err
		}
		total += p
	}
	return total, nil
}

func (q *Query) matchProbability(ds *dataset.Dataset, hs generalize.Set, itemH *hierarchy.Hierarchy, idx []int, r int) (float64, error) {
	rec := ds.Records[r]
	prob := 1.0
	for i, p := range q.Predicates {
		v := rec.Values[idx[i]]
		if v == generalize.Suppressed {
			return 0, nil
		}
		h := hs[p.Attr]
		leaves := []string{v}
		if h != nil {
			if n := h.Node(v); n != nil && !n.IsLeaf() {
				leaves = n.Leaves()
			}
		}
		match := 0
		for _, leaf := range leaves {
			ok, err := p.matchLeaf(leaf)
			if err != nil {
				return 0, err
			}
			if ok {
				match++
			}
		}
		if match == 0 {
			return 0, nil
		}
		prob *= float64(match) / float64(len(leaves))
	}
	for _, queried := range q.Items {
		// Find the anonymized item covering the queried leaf item.
		p := 0.0
		for _, g := range rec.Items {
			if g == queried {
				p = 1
				break
			}
			if itemH != nil && itemH.Covers(g, queried) {
				n := itemH.Node(g)
				p = 1 / float64(n.LeafCount())
				break
			}
		}
		if p == 0 {
			return 0, nil
		}
		prob *= p
	}
	return prob, nil
}

func (p *Predicate) matchLeaf(leaf string) (bool, error) {
	if p.Numeric {
		f, err := strconv.ParseFloat(leaf, 64)
		if err != nil {
			return false, fmt.Errorf("query: non-numeric leaf %q in attribute %q", leaf, p.Attr)
		}
		return f >= p.Lo && f <= p.Hi, nil
	}
	for _, pv := range p.Values {
		if leaf == pv {
			return true, nil
		}
	}
	return false, nil
}

// ARE computes the Average Relative Error of answering the workload on the
// anonymized dataset instead of the original: mean over queries of
// |estimate - actual| / max(actual, sanity). The sanity bound (default 1)
// prevents division by zero for empty-answer queries, following Xu et al.
func ARE(w *Workload, orig, anon *dataset.Dataset, hs generalize.Set, itemH *hierarchy.Hierarchy) (float64, error) {
	if len(w.Queries) == 0 {
		return 0, fmt.Errorf("query: empty workload")
	}
	sum := 0.0
	for i := range w.Queries {
		q := &w.Queries[i]
		actual, err := q.CountExact(orig)
		if err != nil {
			return 0, err
		}
		est, err := q.CountEstimate(anon, hs, itemH)
		if err != nil {
			return 0, err
		}
		denom := actual
		if denom < 1 {
			denom = 1
		}
		sum += math.Abs(est-actual) / denom
	}
	return sum / float64(len(w.Queries)), nil
}

// String renders a query in the workload file format.
func (q *Query) String() string {
	var parts []string
	for _, p := range q.Predicates {
		if p.Numeric {
			parts = append(parts, fmt.Sprintf("%s=[%s,%s]", p.Attr,
				strconv.FormatFloat(p.Lo, 'g', -1, 64),
				strconv.FormatFloat(p.Hi, 'g', -1, 64)))
		} else {
			parts = append(parts, fmt.Sprintf("%s=%s", p.Attr, strings.Join(p.Values, "|")))
		}
	}
	if len(q.Items) > 0 {
		items := append([]string(nil), q.Items...)
		sort.Strings(items)
		parts = append(parts, "items="+strings.Join(items, "|"))
	}
	return strings.Join(parts, ";")
}
