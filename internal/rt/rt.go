// Package rt implements SECRETA's anonymization of RT-datasets — datasets
// with both relational and transaction attributes — via the three bounding
// methods of Poulis et al. (ECML/PKDD 2013): Rmerger, Tmerger and RTmerger.
// A bounding method combines one of the four relational algorithms with one
// of the five transaction algorithms (the paper's 20 combinations) to
// enforce (k, k^m)-anonymity: the relational projection is k-anonymous and
// the transaction multiset of every equivalence class is k^m-anonymous.
//
// The pipeline has three phases. First the relational algorithm builds
// k-anonymous clusters. Then every cluster whose transactions violate
// k^m-anonymity is repaired, either by merging it with another cluster
// (cheap for the transaction attribute, costly for the relational one) or
// by running the transaction algorithm inside the cluster (the reverse
// trade-off). The parameter delta bounds the merge route: a merge is taken
// only when its average relational NCP increase is at most delta; with
// delta = 0 clusters never merge, with large delta they merge freely. The
// three bounding methods differ in how they pick the merge partner:
// Rmerger minimizes the relational loss increase, Tmerger minimizes the
// transaction-side repair work (residual violations of the merged
// multiset), and RTmerger minimizes a weighted combination.
package rt

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/policy"
	"secreta/internal/privacy"
	"secreta/internal/relational"
	"secreta/internal/timing"
	"secreta/internal/transaction"
)

// Flavor selects the bounding method.
type Flavor int

const (
	// RMerge merges the pair with the least relational loss increase.
	RMerge Flavor = iota
	// TMerge merges the pair leaving the fewest transaction violations.
	TMerge
	// RTMerge balances both costs with Options.Weight.
	RTMerge
)

// String returns the paper's name for the flavor.
func (f Flavor) String() string {
	switch f {
	case RMerge:
		return "Rmerger"
	case TMerge:
		return "Tmerger"
	case RTMerge:
		return "RTmerger"
	default:
		return fmt.Sprintf("Flavor(%d)", int(f))
	}
}

// ParseFlavor converts a bounding method name.
func ParseFlavor(s string) (Flavor, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "rmerger", "rmerge", "r":
		return RMerge, nil
	case "tmerger", "tmerge", "t":
		return TMerge, nil
	case "rtmerger", "rtmerge", "rt":
		return RTMerge, nil
	}
	return 0, fmt.Errorf("rt: unknown bounding method %q", s)
}

// RelationalAlgos lists the supported relational algorithm names.
var RelationalAlgos = []string{"incognito", "topdown", "bottomup", "cluster"}

// TransactionAlgos lists the supported transaction algorithm names.
var TransactionAlgos = []string{"apriori", "lra", "vpa", "coat", "pcta"}

// Options configures an RT-dataset anonymization run.
type Options struct {
	// Ctx, when non-nil, is polled throughout the pipeline — inside the
	// relational phase, between merge-traversal iterations and during
	// per-cluster transaction repairs — so a cancelled run stops promptly
	// mid-algorithm with the context's error. Nil disables cancellation.
	Ctx context.Context
	// K is the relational anonymity parameter; also used as the k of
	// k^m-anonymity inside classes.
	K int
	// M is the adversary itemset size of k^m-anonymity.
	M int
	// Delta bounds the average relational NCP increase a cluster merge
	// may cost; merges above it fall back to transaction generalization.
	Delta float64
	// Weight balances RTmerger's two costs (default 0.5; 1 = all
	// relational).
	Weight float64
	// QIs names the relational quasi-identifiers (empty: all).
	QIs []string
	// Hierarchies supplies relational hierarchies.
	Hierarchies generalize.Set
	// ItemHierarchy drives hierarchy-based transaction algorithms and is
	// required for Apriori/LRA/VPA.
	ItemHierarchy *hierarchy.Hierarchy
	// Policy drives COAT/PCTA.
	Policy *policy.Policy
	// Interned, when non-nil, is the columnar interning of the input
	// dataset (dataset.Intern(ds)). The merge traversal's k^m gating runs
	// on its transaction IDs instead of re-interning the item domain, and
	// batch callers (engine.Scheduler) share one interning across every
	// configuration of a batch. Nil makes Anonymize intern once itself.
	Interned *dataset.Indexed
	// RelAlgo and TransAlgo pick the combination (see RelationalAlgos,
	// TransactionAlgos).
	RelAlgo   string
	TransAlgo string
	// Flavor picks the bounding method.
	Flavor Flavor
	// UngatedMerges disables the requirement that a merge strictly
	// reduce the merged clusters' k^m violations. It exists for the
	// ablation benchmarks: without the gate, any delta > 0 lets merges
	// cascade until the whole dataset is one class.
	UngatedMerges bool
}

// Result is the outcome of an RT anonymization.
type Result struct {
	// Anonymized satisfies (k,k^m)-anonymity.
	Anonymized *dataset.Dataset
	// Phases: "relational", "merge", "transaction" timings (plot (b) of
	// the Evaluation mode).
	Phases []timing.Phase
	// Merges is the number of cluster merges performed.
	Merges int
	// Clusters is the final number of equivalence classes.
	Clusters int
	// TransRepairs counts clusters repaired by transaction-side
	// generalization.
	TransRepairs int
	// SuppressedClusters counts clusters whose items had to be dropped
	// entirely (infeasible transaction repair).
	SuppressedClusters int
}

type cluster struct {
	records []int
	relVals []string // generalized QI values, aligned with qis
	// relNodes caches the hierarchy nodes of relVals so the O(clusters^2)
	// merge scoring runs on pointers (LCA walks, O(1) NCP) instead of
	// per-pair value lookups. nil when a signature value is unknown to its
	// hierarchy; such clusters never merge (mirroring the old per-pair
	// lookup error).
	relNodes []*hierarchy.Node
	items    [][]string
	// itemIDs mirrors items as dense IDs into the run's shared TxView —
	// the representation every k^m gating check during the merge phase
	// counts on. The inner slices alias the view (read-only); merging
	// only appends to the outer list. Stale after a transaction-phase
	// repair rewrites items, but no check runs after that point.
	itemIDs [][]uint32
	clean   bool // no further merge processing needed
	merges  int  // merge-chain length, bounded by maxMergeChain
}

// resolveNodes caches the cluster signature's hierarchy nodes.
func (c *cluster) resolveNodes(hh []*hierarchy.Hierarchy) {
	nodes := make([]*hierarchy.Node, len(c.relVals))
	for i, v := range c.relVals {
		n := hh[i].Node(v)
		if n == nil {
			c.relNodes = nil
			return
		}
		nodes[i] = n
	}
	c.relNodes = nodes
}

// maxMergeChain bounds how many merges one cluster may absorb; beyond it
// the transaction algorithm repairs the cluster. Merging pools similar
// transactions so less item generalization is needed, but merging alone can
// rarely satisfy k^m, so an unbounded chain would collapse the whole
// dataset into one class.
const maxMergeChain = 8

// Anonymize runs the configured combination on an RT-dataset.
func Anonymize(ds *dataset.Dataset, opts Options) (*Result, error) {
	if !ds.HasTransaction() {
		return nil, fmt.Errorf("rt: dataset has no transaction attribute")
	}
	if opts.M < 1 {
		return nil, fmt.Errorf("rt: m must be >= 1, got %d", opts.M)
	}
	if opts.Delta < 0 {
		return nil, fmt.Errorf("rt: delta must be >= 0, got %v", opts.Delta)
	}
	if opts.Weight <= 0 || opts.Weight > 1 {
		opts.Weight = 0.5
	}
	relRun, err := relationalByName(opts.RelAlgo)
	if err != nil {
		return nil, err
	}
	transRun, err := transactionByName(opts.TransAlgo)
	if err != nil {
		return nil, err
	}
	qis, err := ds.QIIndices(opts.QIs)
	if err != nil {
		return nil, err
	}
	hh, err := opts.Hierarchies.ForQIs(ds, qis)
	if err != nil {
		return nil, err
	}

	sw := timing.Start()
	relRes, err := relRun(ds, relational.Options{Ctx: opts.Ctx, K: opts.K, QIs: opts.QIs, Hierarchies: opts.Hierarchies, Interned: interned(ds, opts)})
	if err != nil {
		return nil, fmt.Errorf("rt: relational phase (%s): %w", opts.RelAlgo, err)
	}
	sw.Mark("relational")

	// The item domain is interned once for the whole run (or inherited
	// from the caller's batch-shared interning) and every merge-phase k^m
	// check counts violations over the resulting IDs with one reusable
	// counter — the seed re-interned each cluster's transactions and
	// materialized full violation lists on every check just to take their
	// length, which dominated the traversal's allocations.
	view := txView(ds, opts)
	counter := privacy.NewKMCounter(view)
	clusters := clustersFromClasses(ds, relRes.Anonymized, qis, hh, view)
	merges := 0
	for {
		// One traversal iteration scans clusters and scores merge
		// candidates; polling here (and inside pickPartner) bounds the
		// cancellation delay to a fraction of one iteration.
		if err := ctxErr(opts.Ctx); err != nil {
			return nil, err
		}
		dirtyIdx := -1
		for i, c := range clusters {
			if c == nil || c.clean {
				continue
			}
			if counter.Anonymous(opts.K, opts.M, c.itemIDs) {
				c.clean = true
				continue
			}
			dirtyIdx = i
			break
		}
		if dirtyIdx < 0 {
			break
		}
		c := clusters[dirtyIdx]
		partner, delta := pickPartner(clusters, dirtyIdx, hh, opts, counter)
		if partner >= 0 && delta <= opts.Delta && (opts.UngatedMerges || c.merges < maxMergeChain) {
			// Merge only when it actually helps the transaction side:
			// the merged multiset must have strictly fewer violations
			// than the two clusters separately (shared rare itemsets
			// combine support and clear k).
			helps := opts.UngatedMerges
			if !helps {
				before := counter.Count(opts.K, opts.M, 0, c.itemIDs) +
					counter.Count(opts.K, opts.M, 0, clusters[partner].itemIDs)
				after := counter.Count(opts.K, opts.M, 0, c.itemIDs, clusters[partner].itemIDs)
				helps = after < before
			}
			if helps {
				mergeClusters(clusters, dirtyIdx, partner, hh)
				merges++
				continue
			}
		}
		// Too costly or unhelpful to merge: defer to the transaction
		// phase below.
		c.clean = true
	}
	sw.Mark("merge")

	// Transaction phase: enforce k^m inside every cluster that still
	// violates it (including those flagged for repair above).
	transRepairs := 0
	suppressed := 0
	live := clusters[:0]
	for _, c := range clusters {
		if c != nil {
			live = append(live, c)
		}
	}
	clusters = live
	for _, c := range clusters {
		if err := ctxErr(opts.Ctx); err != nil {
			return nil, err
		}
		if counter.Anonymous(opts.K, opts.M, c.itemIDs) {
			continue
		}
		repaired, err := repairCluster(ds, c, transRun, opts)
		if err != nil {
			// A repair abandoned by cancellation is not infeasible —
			// surface the context error instead of suppressing the cluster.
			if cerr := ctxErr(opts.Ctx); cerr != nil {
				return nil, cerr
			}
			// Infeasible inside this cluster: suppress its items.
			for i := range c.items {
				c.items[i] = nil
			}
			c.itemIDs = nil
			suppressed++
			continue
		}
		c.items = repaired
		c.itemIDs = nil // repaired items are generalized; IDs are stale
		transRepairs++
	}
	sw.Mark("transaction")

	anon := ds.Clone()
	for _, c := range clusters {
		for j, r := range c.records {
			for i, q := range qis {
				anon.Records[r].Values[q] = c.relVals[i]
			}
			anon.Records[r].Items = c.items[j]
		}
	}
	sw.Mark("recode")
	return &Result{
		Anonymized:         anon,
		Phases:             sw.Phases(),
		Merges:             merges,
		Clusters:           len(clusters),
		TransRepairs:       transRepairs,
		SuppressedClusters: suppressed,
	}, nil
}

func relationalByName(name string) (func(*dataset.Dataset, relational.Options) (*relational.Result, error), error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "incognito":
		return relational.Incognito, nil
	case "topdown":
		return relational.TopDown, nil
	case "bottomup":
		return relational.BottomUp, nil
	case "cluster":
		return relational.Cluster, nil
	}
	return nil, fmt.Errorf("rt: unknown relational algorithm %q (want one of %v)", name, RelationalAlgos)
}

func transactionByName(name string) (func(*dataset.Dataset, transaction.Options) (*transaction.Result, error), error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "apriori":
		return transaction.Apriori, nil
	case "lra":
		return transaction.LRA, nil
	case "vpa":
		return transaction.VPA, nil
	case "coat":
		return transaction.COAT, nil
	case "pcta":
		return transaction.PCTA, nil
	}
	return nil, fmt.Errorf("rt: unknown transaction algorithm %q (want one of %v)", name, TransactionAlgos)
}

// interned returns the caller-supplied batch interning when it matches
// the dataset, nil otherwise (defensive: a stale or foreign interning
// must not silently recode the wrong records).
func interned(ds *dataset.Dataset, opts Options) *dataset.Indexed {
	if opts.Interned != nil && opts.Interned.N == len(ds.Records) {
		return opts.Interned
	}
	return nil
}

// txView resolves the run's shared transaction view: the batch interning
// when the caller supplied one, a one-time interning of ds otherwise.
func txView(ds *dataset.Dataset, opts Options) *privacy.TxView {
	if ix := interned(ds, opts); ix != nil && ix.ItemDict != nil {
		return privacy.TxViewOf(ix)
	}
	items := make([][]string, len(ds.Records))
	for r := range ds.Records {
		items[r] = ds.Records[r].Items
	}
	return privacy.InternTxView(items)
}

// clustersFromClasses rebuilds cluster state from the relational phase's
// equivalence classes.
func clustersFromClasses(orig, anon *dataset.Dataset, qis []int, hh []*hierarchy.Hierarchy, view *privacy.TxView) []*cluster {
	classes := privacy.Partition(anon, qis)
	out := make([]*cluster, len(classes))
	for i, cl := range classes {
		c := &cluster{records: append([]int(nil), cl.Records...), relVals: cl.Signature}
		c.resolveNodes(hh)
		c.items = itemsOf(orig, c.records)
		c.itemIDs = make([][]uint32, len(c.records))
		for j, r := range c.records {
			c.itemIDs[j] = view.Txs[r]
		}
		out[i] = c
	}
	return out
}

func itemsOf(ds *dataset.Dataset, records []int) [][]string {
	out := make([][]string, len(records))
	for i, r := range records {
		out[i] = append([]string(nil), ds.Records[r].Items...)
	}
	return out
}

// relDelta computes the average per-attribute NCP increase of merging two
// clusters: NCP(LCA of both signatures) minus the size-weighted current
// NCP. Runs on the clusters' cached signature nodes — LCA walks and O(1)
// NCP reads, no value lookups.
func relDelta(a, b *cluster, hh []*hierarchy.Hierarchy) (float64, []*hierarchy.Node, error) {
	if a.relNodes == nil || b.relNodes == nil {
		return 0, nil, fmt.Errorf("rt: cluster signature unknown to hierarchy")
	}
	newNodes := make([]*hierarchy.Node, len(a.relNodes))
	delta := 0.0
	na, nb := float64(len(a.records)), float64(len(b.records))
	for i, h := range hh {
		lca := hierarchy.LCANodes(a.relNodes[i], b.relNodes[i])
		newNodes[i] = lca
		newNCP := h.NCPNode(lca)
		aNCP := h.NCPNode(a.relNodes[i])
		bNCP := h.NCPNode(b.relNodes[i])
		cur := (aNCP*na + bNCP*nb) / (na + nb)
		delta += newNCP - cur
	}
	return delta / float64(len(hh)), newNodes, nil
}

// relDeltaCost is relDelta without materializing the merged signature
// nodes — the candidate-scoring scan only needs the cost, and runs
// O(clusters) times per traversal step. The float operations are the
// same sequence as relDelta's, so the scores (and the partner choice)
// are bit-identical.
func relDeltaCost(a, b *cluster, hh []*hierarchy.Hierarchy) (float64, error) {
	if a.relNodes == nil || b.relNodes == nil {
		return 0, fmt.Errorf("rt: cluster signature unknown to hierarchy")
	}
	delta := 0.0
	na, nb := float64(len(a.records)), float64(len(b.records))
	for i, h := range hh {
		lca := hierarchy.LCANodes(a.relNodes[i], b.relNodes[i])
		newNCP := h.NCPNode(lca)
		aNCP := h.NCPNode(a.relNodes[i])
		bNCP := h.NCPNode(b.relNodes[i])
		cur := (aNCP*na + bNCP*nb) / (na + nb)
		delta += newNCP - cur
	}
	return delta / float64(len(hh)), nil
}

// transCost estimates the transaction-side repair work remaining after
// merging: the number of k^m violations in the merged multiset, normalized
// by the merged item count. Counting runs on the clusters' shared item
// IDs — no merged copy, no violation list.
func transCost(a, b *cluster, k, m int, counter *privacy.KMCounter) float64 {
	total := 0
	for _, tr := range a.itemIDs {
		total += len(tr)
	}
	for _, tr := range b.itemIDs {
		total += len(tr)
	}
	if total == 0 {
		return 0
	}
	vs := counter.Count(k, m, 0, a.itemIDs, b.itemIDs)
	return float64(vs) / float64(total)
}

// ctxErr returns ctx's error, treating a nil context as never cancelled.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// pickPartner selects the best merge partner for cluster i per the bounding
// method, returning the partner index (or -1) and the merge's relational
// delta. Scoring every candidate pair is the traversal's hot path, so the
// scan polls the options context and bails out with -1 when cancelled; the
// caller's own poll then surfaces the context error.
func pickPartner(clusters []*cluster, i int, hh []*hierarchy.Hierarchy, opts Options, counter *privacy.KMCounter) (int, float64) {
	type cand struct {
		j        int
		rd       float64
		tc       float64
		combined float64
	}
	var cands []cand
	for j, other := range clusters {
		if ctxErr(opts.Ctx) != nil {
			return -1, 0
		}
		if j == i || other == nil {
			continue
		}
		rd, err := relDeltaCost(clusters[i], other, hh)
		if err != nil {
			continue
		}
		c := cand{j: j, rd: rd}
		if opts.Flavor != RMerge {
			c.tc = transCost(clusters[i], other, opts.K, opts.M, counter)
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return -1, 0
	}
	switch opts.Flavor {
	case RMerge:
		sort.Slice(cands, func(a, b int) bool { return cands[a].rd < cands[b].rd })
	case TMerge:
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].tc != cands[b].tc {
				return cands[a].tc < cands[b].tc
			}
			return cands[a].rd < cands[b].rd
		})
	default: // RTMerge
		// Normalize relational deltas to [0,1] by the max candidate.
		maxRD := 0.0
		for _, c := range cands {
			if c.rd > maxRD {
				maxRD = c.rd
			}
		}
		for idx := range cands {
			nrd := 0.0
			if maxRD > 0 {
				nrd = cands[idx].rd / maxRD
			}
			cands[idx].combined = opts.Weight*nrd + (1-opts.Weight)*cands[idx].tc
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].combined < cands[b].combined })
	}
	return cands[0].j, cands[0].rd
}

// mergeClusters folds cluster j into cluster i, updating signatures to the
// per-attribute LCA. Cluster j's slot becomes nil.
func mergeClusters(clusters []*cluster, i, j int, hh []*hierarchy.Hierarchy) {
	a, b := clusters[i], clusters[j]
	_, newNodes, err := relDelta(a, b, hh)
	if err != nil {
		return
	}
	newVals := make([]string, len(newNodes))
	for i, n := range newNodes {
		newVals[i] = n.Value
	}
	a.relVals = newVals
	a.relNodes = newNodes
	a.records = append(a.records, b.records...)
	a.items = append(a.items, b.items...)
	a.itemIDs = append(a.itemIDs, b.itemIDs...)
	a.clean = false
	a.merges += b.merges + 1
	clusters[j] = nil
}

// repairCluster runs the transaction algorithm on the cluster's records
// alone and returns the anonymized item lists (aligned with c.records).
func repairCluster(ds *dataset.Dataset, c *cluster, transRun func(*dataset.Dataset, transaction.Options) (*transaction.Result, error), opts Options) ([][]string, error) {
	sub := dataset.New(ds.Attrs, ds.TransName)
	for idx, r := range c.records {
		rec := dataset.Record{
			Values: append([]string(nil), ds.Records[r].Values...),
			Items:  append([]string(nil), c.items[idx]...),
		}
		if err := sub.AddRecord(rec); err != nil {
			return nil, err
		}
	}
	res, err := transRun(sub, transaction.Options{
		Ctx: opts.Ctx,
		K:   opts.K, M: opts.M,
		ItemHierarchy: opts.ItemHierarchy,
		Policy:        clusterPolicy(sub, opts),
	})
	if err != nil {
		return nil, err
	}
	// Mapping-based algorithms protect their policy but do not guarantee
	// k^m; verify and reject so the caller can fall back.
	if !privacy.IsKMAnonymous(privacy.Transactions(res.Anonymized, nil), opts.K, opts.M) {
		return nil, fmt.Errorf("rt: cluster repair by %s left k^m violations", opts.TransAlgo)
	}
	out := make([][]string, len(c.records))
	for i := range c.records {
		out[i] = res.Anonymized.Records[i].Items
	}
	return out, nil
}

// clusterPolicy narrows the configured policy to the cluster's item domain,
// or synthesizes an all-items policy for mapping-based algorithms when none
// was given.
func clusterPolicy(sub *dataset.Dataset, opts Options) *policy.Policy {
	switch strings.ToLower(opts.TransAlgo) {
	case "coat", "pcta":
	default:
		return opts.Policy
	}
	pol := &policy.Policy{}
	if opts.Policy != nil {
		pol.Privacy = opts.Policy.Privacy
		pol.Utility = opts.Policy.Utility
	}
	if len(pol.Privacy) == 0 {
		// Protecting every occurring itemset of size <= m with support
		// >= k is exactly k^m-anonymity, so a COAT/PCTA repair under this
		// synthesized policy satisfies the cluster's obligation.
		pol.Privacy = policy.PrivacyFrequent(sub, 1, opts.M)
	}
	if len(pol.Utility) == 0 {
		pol.Utility = policy.UtilityTop(sub)
	}
	return pol
}
