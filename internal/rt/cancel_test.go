package rt

import (
	"context"
	"errors"
	"testing"
)

// TestCancelledContextAbortsPipeline checks that Options.Ctx reaches every
// phase of the RT pipeline: an already-cancelled context must abort the
// run (in the relational phase, the merge traversal, or a cluster repair)
// instead of producing a result.
func TestCancelledContextAbortsPipeline(t *testing.T) {
	ds, hs, ih := rtData(t, 150, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, flavor := range []Flavor{RMerge, TMerge, RTMerge} {
		opts := baseOpts(hs, ih)
		opts.Flavor = flavor
		opts.Ctx = ctx
		if _, err := Anonymize(ds, opts); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled context returned %v, want context.Canceled", flavor, err)
		}
	}
}
