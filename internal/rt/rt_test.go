package rt

import (
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/gen"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/metrics"
	"secreta/internal/privacy"
)

func rtData(t testing.TB, n int, seed int64) (*dataset.Dataset, generalize.Set, *hierarchy.Hierarchy) {
	t.Helper()
	ds := gen.Census(gen.Config{Records: n, Items: 20, Seed: seed})
	hs, err := gen.Hierarchies(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	ih, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ds, hs, ih
}

func baseOpts(hs generalize.Set, ih *hierarchy.Hierarchy) Options {
	return Options{
		K: 4, M: 2, Delta: 0.3,
		Hierarchies:   hs,
		ItemHierarchy: ih,
		RelAlgo:       "cluster",
		TransAlgo:     "apriori",
		Flavor:        RMerge,
	}
}

func TestAnonymizeEnforcesRTPrivacy(t *testing.T) {
	ds, hs, ih := rtData(t, 150, 1)
	qis, _ := ds.QIIndices(nil)
	for _, flavor := range []Flavor{RMerge, TMerge, RTMerge} {
		opts := baseOpts(hs, ih)
		opts.Flavor = flavor
		res, err := Anonymize(ds, opts)
		if err != nil {
			t.Fatalf("%s: %v", flavor, err)
		}
		rep := privacy.CheckRT(res.Anonymized, qis, opts.K, opts.M)
		if !rep.Holds() {
			t.Errorf("%s: (k,k^m)-anonymity violated: %+v", flavor, rep)
		}
		if res.Clusters <= 0 {
			t.Errorf("%s: clusters = %d", flavor, res.Clusters)
		}
		if len(res.Phases) < 3 {
			t.Errorf("%s: phases = %v", flavor, res.Phases)
		}
	}
}

func TestAllTwentyCombinations(t *testing.T) {
	if testing.Short() {
		t.Skip("20 combinations are slow")
	}
	ds, hs, ih := rtData(t, 90, 2)
	qis, _ := ds.QIIndices(nil)
	for _, rel := range RelationalAlgos {
		for _, tra := range TransactionAlgos {
			opts := baseOpts(hs, ih)
			opts.RelAlgo, opts.TransAlgo = rel, tra
			opts.K, opts.M = 3, 2
			res, err := Anonymize(ds, opts)
			if err != nil {
				t.Errorf("%s+%s: %v", rel, tra, err)
				continue
			}
			rep := privacy.CheckRT(res.Anonymized, qis, opts.K, opts.M)
			if !rep.Holds() {
				t.Errorf("%s+%s: privacy violated: %+v", rel, tra, rep)
			}
		}
	}
}

func TestDeltaZeroNeverMerges(t *testing.T) {
	ds, hs, ih := rtData(t, 120, 3)
	opts := baseOpts(hs, ih)
	opts.Delta = 0
	// delta=0 admits only free merges (identical signatures cannot occur
	// across distinct classes, so no merges at all).
	res, err := Anonymize(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merges != 0 {
		t.Errorf("delta=0 performed %d merges", res.Merges)
	}
}

func TestLargeDeltaMergesMore(t *testing.T) {
	ds, hs, ih := rtData(t, 120, 4)
	low := baseOpts(hs, ih)
	low.Delta = 0
	high := baseOpts(hs, ih)
	high.Delta = 1.0
	resLow, err := Anonymize(ds, low)
	if err != nil {
		t.Fatal(err)
	}
	resHigh, err := Anonymize(ds, high)
	if err != nil {
		t.Fatal(err)
	}
	if resHigh.Merges < resLow.Merges {
		t.Errorf("merges: delta=1 %d < delta=0 %d", resHigh.Merges, resLow.Merges)
	}
	// More merging must reduce transaction-side information loss.
	_, ih2 := metricsPair(t, ds, resLow.Anonymized, resHigh.Anonymized, ih)
	_ = ih2
}

func metricsPair(t testing.TB, orig, a, b *dataset.Dataset, ih *hierarchy.Hierarchy) (float64, float64) {
	t.Helper()
	ga, err := metrics.TransactionGCP(orig, a, ih)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := metrics.TransactionGCP(orig, b, ih)
	if err != nil {
		t.Fatal(err)
	}
	if gb > ga+0.10 {
		t.Errorf("transaction loss grew with delta: %.4f -> %.4f", ga, gb)
	}
	return ga, gb
}

func TestRecordAlignmentAndCoverage(t *testing.T) {
	ds, hs, ih := rtData(t, 100, 5)
	res, err := Anonymize(ds, baseOpts(hs, ih))
	if err != nil {
		t.Fatal(err)
	}
	if res.Anonymized.Len() != ds.Len() {
		t.Fatalf("record count changed")
	}
	qis, _ := ds.QIIndices(nil)
	for r := range ds.Records {
		for _, q := range qis {
			h := hs[ds.Attrs[q].Name]
			if !h.Covers(res.Anonymized.Records[r].Values[q], ds.Records[r].Values[q]) {
				t.Fatalf("record %d: %q does not cover %q", r,
					res.Anonymized.Records[r].Values[q], ds.Records[r].Values[q])
			}
		}
	}
}

func TestOptionErrors(t *testing.T) {
	ds, hs, ih := rtData(t, 60, 6)
	rel := dataset.New([]dataset.Attribute{{Name: "A"}}, "")
	if _, err := Anonymize(rel, baseOpts(hs, ih)); err == nil {
		t.Error("relational-only dataset accepted")
	}
	bad := baseOpts(hs, ih)
	bad.M = 0
	if _, err := Anonymize(ds, bad); err == nil {
		t.Error("m=0 accepted")
	}
	bad = baseOpts(hs, ih)
	bad.Delta = -1
	if _, err := Anonymize(ds, bad); err == nil {
		t.Error("negative delta accepted")
	}
	bad = baseOpts(hs, ih)
	bad.RelAlgo = "nope"
	if _, err := Anonymize(ds, bad); err == nil {
		t.Error("unknown relational algorithm accepted")
	}
	bad = baseOpts(hs, ih)
	bad.TransAlgo = "nope"
	if _, err := Anonymize(ds, bad); err == nil {
		t.Error("unknown transaction algorithm accepted")
	}
}

func TestParseFlavor(t *testing.T) {
	for s, want := range map[string]Flavor{
		"Rmerger": RMerge, "tmerge": TMerge, "RT": RTMerge,
	} {
		got, err := ParseFlavor(s)
		if err != nil || got != want {
			t.Errorf("ParseFlavor(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFlavor("bogus"); err == nil {
		t.Error("bogus flavor accepted")
	}
	if RMerge.String() != "Rmerger" || TMerge.String() != "Tmerger" || RTMerge.String() != "RTmerger" {
		t.Error("flavor names wrong")
	}
}

func TestCOATCombination(t *testing.T) {
	ds, hs, ih := rtData(t, 120, 7)
	qis, _ := ds.QIIndices(nil)
	opts := baseOpts(hs, ih)
	opts.TransAlgo = "coat"
	res, err := Anonymize(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := privacy.CheckRT(res.Anonymized, qis, opts.K, opts.M)
	if !rep.Holds() {
		t.Errorf("coat combination violated privacy: %+v", rep)
	}
}

func TestUngatedMergesCascadeFurther(t *testing.T) {
	ds, hs, ih := rtData(t, 150, 8)
	gated := baseOpts(hs, ih)
	gated.Delta = 0.15
	ungated := gated
	ungated.UngatedMerges = true
	resGated, err := Anonymize(ds, gated)
	if err != nil {
		t.Fatal(err)
	}
	resUngated, err := Anonymize(ds, ungated)
	if err != nil {
		t.Fatal(err)
	}
	if resUngated.Merges < resGated.Merges {
		t.Errorf("ungated merges %d < gated %d", resUngated.Merges, resGated.Merges)
	}
	// Both must still satisfy the privacy model.
	qis, _ := ds.QIIndices(nil)
	for name, res := range map[string]*Result{"gated": resGated, "ungated": resUngated} {
		if rep := privacy.CheckRT(res.Anonymized, qis, gated.K, gated.M); !rep.Holds() {
			t.Errorf("%s: privacy violated: %+v", name, rep)
		}
	}
}
