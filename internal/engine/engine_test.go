package engine

import (
	"strings"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/gen"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/policy"
	"secreta/internal/query"
	"secreta/internal/rt"
)

func fixture(t testing.TB) (*dataset.Dataset, generalize.Set, *hierarchy.Hierarchy, *query.Workload) {
	t.Helper()
	ds := gen.Census(gen.Config{Records: 120, Items: 16, Seed: 21})
	hs, err := gen.Hierarchies(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	ih, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := query.Generate(ds, query.GenOptions{Queries: 30, Dims: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return ds, hs, ih, w
}

func TestRunRelational(t *testing.T) {
	ds, hs, _, w := fixture(t)
	for _, algo := range Algorithms(Relational) {
		res := Run(ds, Config{
			Mode: Relational, Algorithm: algo, K: 5,
			Hierarchies: hs, Workload: w,
		})
		if res.Err != nil {
			t.Fatalf("%s: %v", algo, res.Err)
		}
		if !res.Indicators.KAnonymous {
			t.Errorf("%s: output not k-anonymous", algo)
		}
		if res.Indicators.GCP < 0 || res.Indicators.GCP > 1 {
			t.Errorf("%s: GCP = %v", algo, res.Indicators.GCP)
		}
		if res.Runtime <= 0 || len(res.Phases) == 0 {
			t.Errorf("%s: missing timing", algo)
		}
	}
}

func TestRunTransactional(t *testing.T) {
	ds, _, ih, _ := fixture(t)
	pol := &policy.Policy{Privacy: policy.PrivacyAllItems(ds), Utility: policy.UtilityTop(ds)}
	for _, algo := range Algorithms(Transactional) {
		res := Run(ds, Config{
			Mode: Transactional, Algorithm: algo, K: 3, M: 2,
			ItemHierarchy: ih, Policy: pol,
		})
		if res.Err != nil {
			t.Fatalf("%s: %v", algo, res.Err)
		}
		if algo == "apriori" || algo == "lra" || algo == "vpa" {
			if !res.Indicators.KMAnonymous {
				t.Errorf("%s: output not k^m-anonymous", algo)
			}
		}
	}
}

func TestRunRT(t *testing.T) {
	ds, hs, ih, w := fixture(t)
	res := Run(ds, Config{
		Mode: RT, RelAlgo: "cluster", TransAlgo: "apriori", Flavor: rt.RMerge,
		K: 4, M: 2, Delta: 0.3,
		Hierarchies: hs, ItemHierarchy: ih, Workload: w,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Indicators.KAnonymous || !res.Indicators.KMAnonymous {
		t.Errorf("RT privacy flags: %+v", res.Indicators)
	}
	if res.Indicators.ARE < 0 {
		t.Errorf("ARE = %v", res.Indicators.ARE)
	}
}

func TestRunErrorsAreCaptured(t *testing.T) {
	ds, hs, _, _ := fixture(t)
	res := Run(ds, Config{Mode: Relational, Algorithm: "bogus", K: 2, Hierarchies: hs})
	if res.Err == nil {
		t.Error("bogus algorithm did not error")
	}
	res = Run(ds, Config{Mode: Mode(99), K: 2})
	if res.Err == nil {
		t.Error("bogus mode did not error")
	}
	res = Run(ds, Config{Mode: Relational, Algorithm: "incognito", K: ds.Len() + 1, Hierarchies: hs})
	if res.Err == nil {
		t.Error("infeasible k did not error")
	}
}

func TestRunAllParallelMatchesSerial(t *testing.T) {
	ds, hs, _, _ := fixture(t)
	var cfgs []Config
	for _, k := range []int{2, 4, 8, 16} {
		cfgs = append(cfgs, Config{Mode: Relational, Algorithm: "cluster", K: k, Hierarchies: hs})
	}
	serial := RunAll(ds, cfgs, 1)
	parallel := RunAll(ds, cfgs, 4)
	for i := range cfgs {
		if (serial[i].Err == nil) != (parallel[i].Err == nil) {
			t.Fatalf("config %d: error mismatch", i)
		}
		if serial[i].Indicators.GCP != parallel[i].Indicators.GCP {
			t.Errorf("config %d: GCP %v vs %v", i, serial[i].Indicators.GCP, parallel[i].Indicators.GCP)
		}
	}
}

func TestRunAllKeepsOrderAndFailures(t *testing.T) {
	ds, hs, _, _ := fixture(t)
	cfgs := []Config{
		{Mode: Relational, Algorithm: "cluster", K: 2, Hierarchies: hs},
		{Mode: Relational, Algorithm: "bogus", K: 2, Hierarchies: hs},
		{Mode: Relational, Algorithm: "topdown", K: 2, Hierarchies: hs},
	}
	results := RunAll(ds, cfgs, 0)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("valid configs failed")
	}
	if results[1].Err == nil {
		t.Error("invalid config succeeded")
	}
	if results[0].Config.Algorithm != "cluster" || results[2].Config.Algorithm != "topdown" {
		t.Error("result order broken")
	}
}

func TestDisplayLabel(t *testing.T) {
	c := Config{Mode: RT, RelAlgo: "cluster", TransAlgo: "coat", Flavor: rt.TMerge, K: 5, M: 2, Delta: 0.4}
	if got := c.DisplayLabel(); !strings.Contains(got, "cluster+coat") || !strings.Contains(got, "Tmerger") {
		t.Errorf("DisplayLabel = %q", got)
	}
	c = Config{Label: "custom"}
	if c.DisplayLabel() != "custom" {
		t.Error("explicit label ignored")
	}
	c = Config{Mode: Transactional, Algorithm: "apriori", K: 2, M: 2}
	if got := c.DisplayLabel(); !strings.Contains(got, "apriori") {
		t.Errorf("DisplayLabel = %q", got)
	}
}

func TestAlgorithmsLists(t *testing.T) {
	if len(Algorithms(Relational)) != 4 {
		t.Error("want 4 relational algorithms")
	}
	if len(Algorithms(Transactional)) != 5 {
		t.Error("want 5 transaction algorithms")
	}
	if len(Algorithms(RT)) != 20 {
		t.Errorf("want the paper's 20 combinations, got %d", len(Algorithms(RT)))
	}
}

func TestModeString(t *testing.T) {
	if Relational.String() != "relational" || Transactional.String() != "transaction" || RT.String() != "rt" {
		t.Error("mode names wrong")
	}
}
