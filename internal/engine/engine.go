// Package engine implements SECRETA's backend core (Figure 1 of the
// paper): the Anonymization Module — a uniform interface over all nine
// algorithms and the three RT bounding methods — and the Method
// Evaluator/Comparator, which fans configurations out to N parallel
// anonymization workers and collects results with runtime, phase
// breakdowns, and the full set of utility indicators.
//
// All concurrent execution flows through Scheduler, a bounded worker pool
// that streams results as they complete and honors context cancellation
// down into the algorithms' hot loops (RunCtx). Successful runs are
// memoized in Cache, a size-bounded LRU keyed by dataset and
// configuration content, shared by every scheduler a server creates.
package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/metrics"
	"secreta/internal/obs"
	"secreta/internal/policy"
	"secreta/internal/privacy"
	"secreta/internal/query"
	"secreta/internal/relational"
	"secreta/internal/rt"
	"secreta/internal/timing"
	"secreta/internal/transaction"
)

// Mode classifies what a configuration anonymizes.
type Mode int

const (
	// Relational runs a relational algorithm on the QI attributes.
	Relational Mode = iota
	// Transactional runs a transaction algorithm on the item attribute.
	Transactional
	// RT runs a bounding-method combination on both.
	RT
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Relational:
		return "relational"
	case Transactional:
		return "transaction"
	case RT:
		return "rt"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config is one anonymization request: an algorithm (or combination) plus
// parameters. It is what the Evaluation mode runs once and the Comparison
// mode runs per configuration per parameter value.
type Config struct {
	// Label identifies the configuration in reports and plots.
	Label string
	// Mode picks the attribute side(s) to anonymize.
	Mode Mode
	// Algorithm names the relational or transaction algorithm (per
	// Mode); for RT mode, RelAlgo/TransAlgo/Flavor are used instead.
	Algorithm string
	// RelAlgo, TransAlgo, Flavor configure RT mode.
	RelAlgo   string
	TransAlgo string
	Flavor    rt.Flavor
	// K, M, Delta are the privacy parameters (M, Delta: RT/transaction).
	K     int
	M     int
	Delta float64
	// Rho and Sensitive configure the rho-uncertainty extension
	// algorithm (transaction mode, Algorithm: "rho").
	Rho       float64
	Sensitive []string
	// QIs restricts the quasi-identifiers (empty: all relational).
	QIs []string
	// Hierarchies, ItemHierarchy, Policy are the configuration inputs
	// from the Configuration Editor.
	Hierarchies   generalize.Set
	ItemHierarchy *hierarchy.Hierarchy
	Policy        *policy.Policy
	// Workload, when set, lets the evaluator compute ARE.
	Workload *query.Workload
}

// DisplayLabel returns Label or a synthesized description.
func (c *Config) DisplayLabel() string {
	if c.Label != "" {
		return c.Label
	}
	switch c.Mode {
	case RT:
		return fmt.Sprintf("%s+%s/%s k=%d m=%d d=%.2g", c.RelAlgo, c.TransAlgo, c.Flavor, c.K, c.M, c.Delta)
	case Transactional:
		return fmt.Sprintf("%s k=%d m=%d", c.Algorithm, c.K, c.M)
	default:
		return fmt.Sprintf("%s k=%d", c.Algorithm, c.K)
	}
}

// Indicators is the utility/privacy summary of one run — the numbers the
// message box and plots of the Evaluation mode present.
type Indicators struct {
	GCP              float64 // relational information loss, [0,1]
	TransactionGCP   float64 // transaction information loss, [0,1]
	ARE              float64 // average relative error over the workload
	Discernibility   float64
	CAVG             float64
	SuppressionRatio float64
	MinClassSize     int
	Classes          int
	KAnonymous       bool
	KMAnonymous      bool
}

// Result is one completed anonymization with its evaluation.
type Result struct {
	Config     Config
	Anonymized *dataset.Dataset
	// Records is a replayable, incrementally consumable iterator over the
	// anonymized records — what streaming consumers (secreta-serve's
	// chunked result delivery, `secreta evaluate -stream`) read instead of
	// serializing Anonymized into one fully materialized payload. It is
	// set whenever the run produced an anonymized dataset and may be
	// scanned any number of times.
	Records    dataset.RecordSource
	Runtime    time.Duration
	Phases     []timing.Phase
	Indicators Indicators
	Err        error
}

// Run executes a single configuration synchronously and evaluates it —
// the Evaluation mode's single-parameter execution. The run cannot be
// cancelled; use RunCtx when it should be.
func Run(ds *dataset.Dataset, cfg Config) *Result {
	return RunCtx(context.Background(), ds, cfg)
}

// RunCtx is Run under a context: ctx is plumbed into the algorithm's hot
// loops (Apriori repair rounds, cluster absorption, lattice expansion, RT
// merge traversal), so cancelling it aborts the run mid-algorithm — not at
// the next configuration boundary — with Result.Err set to the context's
// error.
func RunCtx(ctx context.Context, ds *dataset.Dataset, cfg Config) *Result {
	return runShared(ctx, ds, cfg, newBatchShared(ds))
}

// runShared is RunCtx over batch-shared derived state: Scheduler.Stream
// builds one batchShared per batch so its workers intern the dataset once
// between them instead of once per configuration.
func runShared(ctx context.Context, ds *dataset.Dataset, cfg Config, sh *batchShared) *Result {
	sp := obs.FromCtx(ctx).Start("run", obs.String("config", cfg.DisplayLabel()))
	defer sp.End()
	ctx = obs.With(ctx, sp)
	start := time.Now()
	res := &Result{Config: cfg}
	anon, phases, err := dispatch(ctx, ds, cfg, sh)
	res.Runtime = time.Since(start)
	res.Phases = phases
	// Stopwatch phases are contiguous from the run's start; replay them as
	// child spans so the trace shows the algorithm's internal cost split
	// without re-timing anything.
	at := start
	for _, ph := range phases {
		next := at.Add(ph.Duration)
		sp.Interval(ph.Name, at, next)
		at = next
	}
	if err != nil {
		res.Err = err
		return res
	}
	res.Anonymized = anon
	res.Records = anon
	evalStart := time.Now()
	res.Indicators, res.Err = Evaluate(ds, anon, cfg)
	sp.Interval("evaluate", evalStart, time.Now())
	return res
}

func dispatch(ctx context.Context, ds *dataset.Dataset, cfg Config, sh *batchShared) (*dataset.Dataset, []timing.Phase, error) {
	switch cfg.Mode {
	case Relational:
		run, err := relationalByName(cfg.Algorithm)
		if err != nil {
			return nil, nil, err
		}
		r, err := run(ds, relational.Options{Ctx: ctx, K: cfg.K, QIs: cfg.QIs, Hierarchies: cfg.Hierarchies, Interned: sh.indexed()})
		if err != nil {
			return nil, nil, err
		}
		return r.Anonymized, r.Phases, nil
	case Transactional:
		run, err := transactionByName(cfg.Algorithm)
		if err != nil {
			return nil, nil, err
		}
		r, err := run(ds, transaction.Options{
			Ctx: ctx,
			K:   cfg.K, M: cfg.M,
			ItemHierarchy: cfg.ItemHierarchy,
			Policy:        cfg.Policy,
			Rho:           cfg.Rho,
			Sensitive:     cfg.Sensitive,
		})
		if err != nil {
			return nil, nil, err
		}
		return r.Anonymized, r.Phases, nil
	case RT:
		r, err := rt.Anonymize(ds, rt.Options{
			Ctx: ctx,
			K:   cfg.K, M: cfg.M, Delta: cfg.Delta,
			QIs:           cfg.QIs,
			Hierarchies:   cfg.Hierarchies,
			ItemHierarchy: cfg.ItemHierarchy,
			Policy:        cfg.Policy,
			RelAlgo:       cfg.RelAlgo,
			TransAlgo:     cfg.TransAlgo,
			Flavor:        cfg.Flavor,
			Interned:      sh.indexed(),
		})
		if err != nil {
			return nil, nil, err
		}
		return r.Anonymized, r.Phases, nil
	}
	return nil, nil, fmt.Errorf("engine: unknown mode %v", cfg.Mode)
}

func relationalByName(name string) (func(*dataset.Dataset, relational.Options) (*relational.Result, error), error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "incognito":
		return relational.Incognito, nil
	case "topdown":
		return relational.TopDown, nil
	case "bottomup":
		return relational.BottomUp, nil
	case "cluster":
		return relational.Cluster, nil
	}
	return nil, fmt.Errorf("engine: unknown relational algorithm %q", name)
}

func transactionByName(name string) (func(*dataset.Dataset, transaction.Options) (*transaction.Result, error), error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "apriori":
		return transaction.Apriori, nil
	case "lra":
		return transaction.LRA, nil
	case "vpa":
		return transaction.VPA, nil
	case "coat":
		return transaction.COAT, nil
	case "pcta":
		return transaction.PCTA, nil
	case "rho":
		return transaction.RhoUncertainty, nil
	}
	return nil, fmt.Errorf("engine: unknown transaction algorithm %q", name)
}

// ExtensionAlgos lists algorithms beyond the paper's original nine — the
// extensions its conclusion announces ("rho" = rho-uncertainty, Cao et
// al.). They run in Transactional mode like the core five.
var ExtensionAlgos = []string{"rho"}

// Algorithms lists every runnable single-algorithm name by mode.
func Algorithms(mode Mode) []string {
	switch mode {
	case Relational:
		return append([]string(nil), rt.RelationalAlgos...)
	case Transactional:
		return append([]string(nil), rt.TransactionAlgos...)
	default:
		var out []string
		for _, r := range rt.RelationalAlgos {
			for _, t := range rt.TransactionAlgos {
				out = append(out, r+"+"+t)
			}
		}
		sort.Strings(out)
		return out
	}
}

// Evaluate computes the full indicator set for an anonymized dataset.
func Evaluate(orig, anon *dataset.Dataset, cfg Config) (Indicators, error) {
	var ind Indicators
	qis, err := orig.QIIndices(cfg.QIs)
	if err != nil {
		return ind, err
	}
	relSide := cfg.Mode == Relational || cfg.Mode == RT
	transSide := (cfg.Mode == Transactional || cfg.Mode == RT) && orig.HasTransaction()

	// The relational indicators and the RT check all consume the same
	// equivalence-class partition; compute it once and derive each from
	// the shared classes (Partition is deterministic, so the values are
	// identical to the per-indicator partitions they replace).
	var classes []privacy.Class
	if relSide {
		if ind.GCP, err = metrics.GCP(anon, cfg.Hierarchies, qis); err != nil {
			return ind, err
		}
		classes = privacy.Partition(anon, qis)
		ind.Discernibility = metrics.DiscernibilityClasses(len(anon.Records), classes)
		ind.CAVG = metrics.CAVGClasses(classes, cfg.K)
		ind.SuppressionRatio = metrics.SuppressionRatio(anon, qis)
		ind.MinClassSize = minClassLen(anon, classes)
		ind.Classes = len(classes)
		ind.KAnonymous = classesKAnonymous(classes, cfg.K)
	}
	if transSide {
		if cfg.ItemHierarchy != nil {
			if ind.TransactionGCP, err = metrics.TransactionGCP(orig, anon, cfg.ItemHierarchy); err != nil {
				return ind, err
			}
		}
		switch cfg.Mode {
		case RT:
			rep := privacy.CheckRTClasses(anon, classes, cfg.K, cfg.M)
			ind.KMAnonymous = rep.BadClasses == 0
			ind.KAnonymous = rep.KAnonymous
		default:
			ind.KMAnonymous = privacy.IsKMAnonymous(privacy.Transactions(anon, nil), cfg.K, cfg.M)
		}
	}
	if cfg.Workload != nil && cfg.Workload.Len() > 0 {
		are, err := query.ARE(cfg.Workload, orig, anon, cfg.Hierarchies, cfg.ItemHierarchy)
		if err != nil {
			return ind, err
		}
		ind.ARE = are
	}
	return ind, nil
}

// minClassLen mirrors privacy.MinClassSize over a precomputed partition:
// the smallest class size, 0 when no unsuppressed records exist.
func minClassLen(ds *dataset.Dataset, classes []privacy.Class) int {
	if len(classes) == 0 {
		return 0
	}
	min := len(ds.Records)
	for _, c := range classes {
		if len(c.Records) < min {
			min = len(c.Records)
		}
	}
	return min
}

// classesKAnonymous mirrors privacy.IsKAnonymous over a precomputed
// partition.
func classesKAnonymous(classes []privacy.Class, k int) bool {
	if k <= 1 {
		return true
	}
	for _, c := range classes {
		if len(c.Records) < k {
			return false
		}
	}
	return true
}

// RunAll executes many configurations over the dataset using `workers`
// parallel anonymization module instances (the "N threads" of the paper's
// architecture; workers <= 0 means one per configuration, capped at the
// number of CPUs the runtime may use).
// Results are returned in input order; individual failures are recorded in
// Result.Err without failing the batch. It is a convenience facade over
// Scheduler for callers with no context or cache of their own.
func RunAll(ds *dataset.Dataset, cfgs []Config, workers int) []*Result {
	results, _ := NewScheduler(workers, nil).RunAll(context.Background(), ds, cfgs)
	return results
}
