package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"secreta/internal/dataset"
	"secreta/internal/timing"
)

// CacheBacking is the durable side of a disk-backed result cache
// (implemented by internal/store's CacheStore). SaveResult must be atomic
// and durable before returning; LoadResult answers (nil, nil) when the
// key has never been saved. The engine treats backing failures as cache
// misses — persistence must never fail a job.
type CacheBacking interface {
	SaveResult(key string, data []byte) error
	LoadResult(key string) ([]byte, error)
}

// SetBacking attaches a durable spill target: every successful result is
// written through on put, and a RAM miss consults the backing before
// computing. Keys are pure content (dataset fingerprint + config digest),
// so entries written before a restart are valid hits after it. Call
// before the cache serves traffic.
func (c *Cache) SetBacking(b CacheBacking) {
	c.mu.Lock()
	c.backing = b
	c.mu.Unlock()
}

// storedResult is the serialized form of a cached Result. Config is
// deliberately absent: a disk hit is keyed by the config's content
// digest, so the caller's live Config is — by construction — content-
// equal to the one that produced the entry, and is re-attached on decode.
// Err is likewise absent: only successful results are ever cached.
type storedResult struct {
	RuntimeNS  int64           `json:"runtime_ns"`
	Phases     []storedPhase   `json:"phases,omitempty"`
	Indicators Indicators      `json:"indicators"`
	Anonymized json.RawMessage `json:"anonymized,omitempty"`
}

type storedPhase struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
}

// encodeResult serializes a successful Result for the backing.
func encodeResult(r *Result) ([]byte, error) {
	out := storedResult{RuntimeNS: r.Runtime.Nanoseconds(), Indicators: r.Indicators}
	for _, p := range r.Phases {
		out.Phases = append(out.Phases, storedPhase{Name: p.Name, DurationNS: p.Duration.Nanoseconds()})
	}
	if r.Anonymized != nil {
		var buf bytes.Buffer
		if err := r.Anonymized.WriteJSON(&buf); err != nil {
			return nil, fmt.Errorf("engine: encoding anonymized dataset: %w", err)
		}
		out.Anonymized = buf.Bytes()
	}
	return json.Marshal(out)
}

// decodeResult rebuilds a Result from the backing's bytes, attaching the
// caller's config (content-equal to the producer's, see storedResult).
func decodeResult(data []byte, cfg Config) (*Result, error) {
	var in storedResult
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("engine: decoding cached result: %w", err)
	}
	r := &Result{
		Config:     cfg,
		Runtime:    time.Duration(in.RuntimeNS),
		Indicators: in.Indicators,
	}
	for _, p := range in.Phases {
		r.Phases = append(r.Phases, timing.Phase{Name: p.Name, Duration: time.Duration(p.DurationNS)})
	}
	if len(in.Anonymized) > 0 {
		ds, err := dataset.ReadJSON(bytes.NewReader(in.Anonymized))
		if err != nil {
			return nil, fmt.Errorf("engine: decoding cached anonymized dataset: %w", err)
		}
		r.Anonymized = ds
		r.Records = ds
	}
	return r, nil
}
