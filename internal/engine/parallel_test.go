package engine

import (
	"context"
	"runtime"
	"testing"
	"time"

	"secreta/internal/dataset"
	"secreta/internal/gen"
	"secreta/internal/rt"
)

// scalingBatch builds a CPU-bound batch of RT configurations over a
// fixture big enough that per-run compute dwarfs scheduling overhead.
func scalingBatch(t testing.TB, records int) (ds *dataset.Dataset, cfgs []Config) {
	t.Helper()
	d := gen.Census(gen.Config{Records: records, Items: 24, MaxBasket: 5, Seed: 33})
	hs, err := gen.Hierarchies(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	ih, err := gen.ItemHierarchy(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 16; k += 2 {
		cfgs = append(cfgs, Config{
			Mode: RT, RelAlgo: "cluster", TransAlgo: "apriori", Flavor: rt.RMerge,
			K: k, M: 2, Delta: 0.5, Hierarchies: hs, ItemHierarchy: ih,
		})
	}
	return d, cfgs
}

// TestParallelSpeedupSmoke checks that the scheduler actually scales: the
// same batch at workers=4 must beat workers=1 by at least 1.5x. Skipped
// in -short runs (it is a timing test) and on machines without 4 CPUs,
// where the speedup physically cannot materialize.
func TestParallelSpeedupSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing smoke test, skipped in -short")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs >= 4 CPUs, have GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	}
	ds, cfgs := scalingBatch(t, 400)
	run := func(workers int) time.Duration {
		start := time.Now()
		for _, r := range RunAll(ds, cfgs, workers) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
		return time.Since(start)
	}
	run(1) // warm caches (hierarchy indexes, page cache) off the clock
	serial := run(1)
	parallel := run(4)
	ratio := float64(serial) / float64(parallel)
	t.Logf("workers=1: %v, workers=4: %v, speedup %.2fx", serial, parallel, ratio)
	if ratio < 1.5 {
		t.Fatalf("workers=4 speedup %.2fx < 1.5x (serial %v, parallel %v)", ratio, serial, parallel)
	}
}

// TestBatchSharedConcurrent drives one Stream batch wide enough that all
// workers race into the lazily built batch-shared interning — under
// -race this pins that the shared Indexed (and the algorithm state built
// over it) is safe for concurrent workers. Results must also match a
// serial run exactly.
func TestBatchSharedConcurrent(t *testing.T) {
	ds, cfgs := scalingBatch(t, 150)
	serial := RunAll(ds, cfgs, 1)
	got, err := NewScheduler(8, nil).RunAll(context.Background(), ds, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("cfg %d: %v", i, r.Err)
		}
		if serial[i].Err != nil {
			t.Fatalf("serial cfg %d: %v", i, serial[i].Err)
		}
		if r.Indicators != serial[i].Indicators {
			t.Fatalf("cfg %d: concurrent indicators %+v diverge from serial %+v",
				i, r.Indicators, serial[i].Indicators)
		}
		if r.Anonymized.Fingerprint() != serial[i].Anonymized.Fingerprint() {
			t.Fatalf("cfg %d: concurrent output diverges from serial", i)
		}
	}
}
