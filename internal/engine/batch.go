package engine

import (
	"sync"

	"secreta/internal/dataset"
)

// batchShared carries dataset-derived state that every configuration of
// one batch needs but none may mutate: today, the columnar interning
// (dataset.Intern). Before it existed, each of a Stream's N workers
// re-interned the full dataset per configuration — identical work, done
// N·cfgs times, whose allocation traffic serialized the pool behind the
// garbage collector and made workers=8 run at workers=1 speed.
//
// The interning is built lazily on first use so Transactional-only
// batches never pay for it, and behind a sync.Once so concurrent workers
// racing into their first relational/RT dispatch share one build.
type batchShared struct {
	ds   *dataset.Dataset
	once sync.Once
	ix   *dataset.Indexed
}

func newBatchShared(ds *dataset.Dataset) *batchShared {
	return &batchShared{ds: ds}
}

// indexed returns the batch's shared columnar interning, building it on
// first call. The result is immutable and safe to hand to any number of
// concurrent algorithm runs.
func (b *batchShared) indexed() *dataset.Indexed {
	b.once.Do(func() { b.ix = dataset.Intern(b.ds) })
	return b.ix
}
