package engine

import (
	"fmt"
	"slices"
	"strings"

	"secreta/internal/rt"
)

// ConfigFromSpec parses an algorithm spec string — "rel", "trans" or
// "rel+trans[/flavor]" — into a Config skeleton with Mode, algorithm names
// and flavor set. Privacy parameters, hierarchies and policies are the
// caller's to fill in. This is the one grammar shared by the secreta CLI
// flags and the secreta-serve request payloads.
func ConfigFromSpec(spec string) (Config, error) {
	s := strings.TrimSpace(spec)
	flavor := rt.RMerge
	if i := strings.LastIndex(s, "/"); i >= 0 {
		f, err := rt.ParseFlavor(s[i+1:])
		if err != nil {
			return Config{}, err
		}
		flavor = f
		s = s[:i]
	}
	if rel, tra, found := strings.Cut(s, "+"); found {
		cfg := Config{
			Mode:      RT,
			RelAlgo:   strings.ToLower(strings.TrimSpace(rel)),
			TransAlgo: strings.ToLower(strings.TrimSpace(tra)),
			Flavor:    flavor,
		}
		// Validate both sides now so a typo fails at submission with the
		// candidate lists, not later inside the anonymization run.
		if !slices.Contains(rt.RelationalAlgos, cfg.RelAlgo) {
			return Config{}, fmt.Errorf("unknown relational algorithm %q (want one of %v)", cfg.RelAlgo, rt.RelationalAlgos)
		}
		if !slices.Contains(rt.TransactionAlgos, cfg.TransAlgo) {
			return Config{}, fmt.Errorf("unknown transaction algorithm %q (want one of %v)", cfg.TransAlgo, rt.TransactionAlgos)
		}
		return cfg, nil
	}
	lower := strings.ToLower(s)
	for _, name := range rt.RelationalAlgos {
		if lower == name {
			return Config{Mode: Relational, Algorithm: lower}, nil
		}
	}
	for _, name := range rt.TransactionAlgos {
		if lower == name {
			return Config{Mode: Transactional, Algorithm: lower}, nil
		}
	}
	for _, name := range ExtensionAlgos {
		if lower == name {
			return Config{Mode: Transactional, Algorithm: lower}, nil
		}
	}
	return Config{}, fmt.Errorf("unknown algorithm %q (relational: %v; transaction: %v; extensions: %v; RT: rel+trans[/flavor])",
		spec, rt.RelationalAlgos, rt.TransactionAlgos, ExtensionAlgos)
}
