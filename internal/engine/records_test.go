package engine

import (
	"reflect"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/gen"
)

// TestResultRecordsReplayable pins the engine half of streaming delivery:
// a successful run carries a replayable record iterator that yields
// exactly the anonymized dataset's records, twice in a row.
func TestResultRecordsReplayable(t *testing.T) {
	ds := gen.Census(gen.Config{Records: 60, Items: 6, Seed: 3})
	cfg, err := ConfigFromSpec("cluster+apriori/rmerger")
	if err != nil {
		t.Fatal(err)
	}
	cfg.K, cfg.M, cfg.Delta = 3, 2, 0.5
	if cfg.Hierarchies, err = gen.Hierarchies(ds, 3); err != nil {
		t.Fatal(err)
	}
	if cfg.ItemHierarchy, err = gen.ItemHierarchy(ds, 2); err != nil {
		t.Fatal(err)
	}
	res := Run(ds, cfg)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Records == nil {
		t.Fatal("successful run carries no record iterator")
	}
	scan := func() []dataset.Record {
		var out []dataset.Record
		res.Records.ScanRecords(func(i int, rec dataset.Record) bool {
			out = append(out, rec.Clone())
			return true
		})
		return out
	}
	first, second := scan(), scan()
	if !reflect.DeepEqual(first, res.Anonymized.Records) {
		t.Fatal("record iterator diverges from Anonymized.Records")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("record iterator is not replayable")
	}
	if n := res.Records.NumRecords(); n != len(res.Anonymized.Records) {
		t.Fatalf("NumRecords = %d, want %d", n, len(res.Anonymized.Records))
	}
}
