package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"secreta/internal/dataset"
	"secreta/internal/faultfs"
	"secreta/internal/obs"
	"secreta/internal/policy"
	"secreta/internal/registry"
)

// Scheduler is the engine's single concurrency path: a bounded worker pool
// that streams results over a channel as they complete, honors context
// cancellation, and serves repeated (dataset, configuration) pairs from a
// result cache. RunAll, the experiment module and secreta-serve all drive
// their work through one of these.
type Scheduler struct {
	workers int
	cache   *Cache
}

// NewScheduler builds a scheduler. workers <= 0 picks one worker per
// configuration at dispatch time, capped at the number of CPUs the
// runtime may use (GOMAXPROCS). cache may be nil to disable result
// caching.
func NewScheduler(workers int, cache *Cache) *Scheduler {
	return &Scheduler{workers: workers, cache: cache}
}

// Workers resolves the effective pool size for n queued configurations:
// the configured count, or min(n, GOMAXPROCS) by default. The old default
// was hardcoded at 8, which both oversubscribed small boxes and capped
// big ones — the anonymization workers are CPU-bound, so the pool should
// track the CPUs actually available, not a constant.
func (s *Scheduler) Workers(n int) int {
	w := s.workers
	if w <= 0 {
		w = n
		if p := runtime.GOMAXPROCS(0); w > p {
			w = p
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Cache returns the scheduler's result cache (nil when caching is off).
func (s *Scheduler) Cache() *Cache { return s.cache }

// Item is one streamed completion: the input position it answers, the
// result, and whether it was served from the cache.
type Item struct {
	Index    int
	Result   *Result
	CacheHit bool
}

// Stream executes the configurations over the dataset and emits an Item per
// configuration as it completes, in completion order. The returned channel
// is closed when all work is done or the context is cancelled; after
// cancellation no further jobs are started and unfinished configurations
// are never emitted. Failures stay per-item in Result.Err.
//
// Contract: the caller must either drain the channel or cancel ctx —
// abandoning it mid-stream with a live context strands the worker
// goroutines on their sends for the life of the process.
func (s *Scheduler) Stream(ctx context.Context, ds *dataset.Dataset, cfgs []Config) <-chan Item {
	out := make(chan Item)
	workers := s.Workers(len(cfgs))
	// One batchShared serves the whole batch: workers intern the dataset
	// once between them and run over the shared immutable view.
	sh := newBatchShared(ds)
	dsKey := ""
	var memo *inputHasher
	if s.cache != nil {
		dsKey = ds.Fingerprint()
		memo = newInputHasher()
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				item := s.runOne(ctx, ds, cfgs[i], dsKey, memo, i, sh)
				// Prefer delivery over the cancellation signal: when the
				// consumer is waiting, a completed result must reach it
				// even if ctx was cancelled meanwhile — a bare two-way
				// select picks randomly when both cases are ready and
				// would discard finished work half the time.
				select {
				case out <- item:
					continue
				default:
				}
				select {
				case out <- item:
				case <-ctx.Done():
					// Last chance for a draining consumer; drop only if
					// nobody is receiving (abandoned stream).
					select {
					case out <- item:
					default:
					}
					return
				}
			}
		}()
	}
	go func() {
		defer close(out)
		defer wg.Wait()
		defer close(jobs)
		for i := range cfgs {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// runOne executes (or recalls) a single configuration. When another
// worker — possibly from a different scheduler sharing the cache — is
// already computing the same key, it waits for that result instead of
// recomputing (single-flight).
func (s *Scheduler) runOne(ctx context.Context, ds *dataset.Dataset, cfg Config, dsKey string, memo *inputHasher, i int, sh *batchShared) Item {
	if err := ctx.Err(); err != nil {
		return Item{Index: i, Result: &Result{Config: cfg, Err: err}}
	}
	if s.cache == nil {
		return Item{Index: i, Result: runShared(ctx, ds, cfg, sh)}
	}
	key := dsKey + "/" + cfg.cacheKey(memo)
	for {
		if r, ok := s.cache.lookup(key, cfg); ok {
			// The cached Result carries the first submitter's Config
			// (Label, pointer identities); answer with the caller's so
			// labels aren't misattributed across requests.
			obs.FromCtx(ctx).Event("cache_hit", obs.String("config", cfg.DisplayLabel()))
			rc := *r
			rc.Config = cfg
			return Item{Index: i, Result: &rc, CacheHit: true}
		}
		leader, fl := s.cache.claim(key)
		if leader {
			r := func() *Result {
				released := false
				releaseOnce := func(published *Result) {
					if !released {
						released = true
						s.cache.release(key, published)
					}
				}
				// Panic safety: a flight must never be left unreleased.
				defer func() { releaseOnce(nil) }()
				r := runShared(ctx, ds, cfg, sh)
				if r.Err == nil {
					s.cache.put(key, r)
					// Wake the waiters before the (fsync'd) disk spill:
					// N-1 duplicates must not stall behind persistence.
					// The leader alone pays the write — that is what
					// durability costs one writer.
					releaseOnce(r)
					s.cache.spill(key, r)
				}
				return r
			}()
			return Item{Index: i, Result: r}
		}
		// Someone else is computing this key: wait for them. A successful
		// leader hands its result over directly — not via the cache, which
		// may have rejected or already evicted it under its caps — so
		// duplicates never recompute. A failed leader publishes nothing;
		// the next loop iteration re-checks the cache and claims.
		select {
		case <-fl.done:
			if r := fl.result; r != nil {
				s.cache.countHit()
				obs.FromCtx(ctx).Event("cache_hit",
					obs.String("config", cfg.DisplayLabel()), obs.String("via", "single_flight"))
				rc := *r
				rc.Config = cfg
				return Item{Index: i, Result: &rc, CacheHit: true}
			}
		case <-ctx.Done():
			return Item{Index: i, Result: &Result{Config: cfg, Err: ctx.Err()}}
		}
	}
}

// RunAll drains Stream into an input-ordered slice. It returns the context
// error only when cancellation actually cost results — a cancel that lands
// after the last configuration completed still returns the full batch, so
// finished work is never thrown away. Unfinished slots are nil.
func (s *Scheduler) RunAll(ctx context.Context, ds *dataset.Dataset, cfgs []Config) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	for item := range s.Stream(ctx, ds, cfgs) {
		results[item.Index] = item.Result
	}
	if err := ctx.Err(); err != nil {
		for _, r := range results {
			if r == nil {
				return results, err
			}
		}
	}
	return results, nil
}

// inputHasher memoizes content digests of the heavyweight shared inputs
// (hierarchies, policies, workloads) by pointer identity for the duration
// of one Stream call — a 100-point sweep serializes each hierarchy once,
// not once per point. Content-addressing is preserved: the digest is still
// of the serialized bytes, the pointer only keys the memo.
type inputHasher struct {
	mu sync.Mutex
	m  map[any]string
}

func newInputHasher() *inputHasher {
	return &inputHasher{m: make(map[any]string)}
}

func (ih *inputHasher) digest(key any, write func(w io.Writer)) string {
	ih.mu.Lock()
	if d, ok := ih.m[key]; ok {
		ih.mu.Unlock()
		return d
	}
	ih.mu.Unlock()
	h := sha256.New()
	write(h)
	d := hex.EncodeToString(h.Sum(nil))
	ih.mu.Lock()
	ih.m[key] = d
	ih.mu.Unlock()
	return d
}

// cacheKey derives a content-based key for the configuration: scalar
// parameters plus digests of the serialized hierarchies, policies and
// workload, so two configs that would anonymize identically share a cache
// entry regardless of pointer identity.
func (c *Config) cacheKey(memo *inputHasher) string {
	h := sha256.New()
	fmt.Fprintf(h, "%v|%s|%s|%s|%v|%d|%d|%g|%g|%q|%q|",
		c.Mode, c.Algorithm, c.RelAlgo, c.TransAlgo, c.Flavor,
		c.K, c.M, c.Delta, c.Rho, c.QIs, c.Sensitive)
	names := make([]string, 0, len(c.Hierarchies))
	for name := range c.Hierarchies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		hier := c.Hierarchies[name]
		fmt.Fprintf(h, "h:%s:%s|", name, memo.digest(hier, func(w io.Writer) { hier.WriteCSV(w) }))
	}
	if c.ItemHierarchy != nil {
		ihier := c.ItemHierarchy
		fmt.Fprintf(h, "ih:%s|", memo.digest(ihier, func(w io.Writer) { ihier.WriteCSV(w) }))
	}
	if c.Policy != nil {
		pol := c.Policy
		fmt.Fprintf(h, "p:%s|", memo.digest(pol, func(w io.Writer) {
			policy.WritePrivacy(w, pol.Privacy)
			fmt.Fprintf(w, "|")
			policy.WriteUtility(w, pol.Utility)
		}))
	}
	if c.Workload != nil {
		wl := c.Workload
		fmt.Fprintf(h, "w:%s|", memo.digest(wl, func(w io.Writer) { wl.Write(w) }))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CacheStats is a snapshot of cache effectiveness and occupancy counters.
// Misses count actual computations (single-flight leaders), so Hits+Misses
// equals the number of cache-backed runs even when duplicates arrive
// concurrently. Entries/Bytes are current occupancy against the configured
// caps; Evictions counts entries dropped to stay within them and Rejected
// counts results too large to ever fit the byte cap.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// DiskHits are hits served by rehydrating a persisted entry after a
	// RAM miss; DiskErrors count backing failures (degraded, not fatal).
	// DiskTransient is the subset of DiskErrors that classified transient
	// (faultfs.IsTransient) — a flaky disk shows here, a broken one only
	// in DiskErrors.
	DiskHits      uint64 `json:"disk_hits"`
	DiskErrors    uint64 `json:"disk_errors"`
	DiskTransient uint64 `json:"disk_transient"`
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
	MaxEntries    int    `json:"max_entries"`
	MaxBytes      int64  `json:"max_bytes"`
	Evictions     uint64 `json:"evictions"`
	Rejected      uint64 `json:"rejected"`
}

// Default result-cache caps: a long-lived server must not grow without
// bound, so even NewCache is bounded. Override with NewCacheSized.
const (
	DefaultCacheEntries = 1024
	DefaultCacheBytes   = 256 << 20 // 256 MiB of approximate result memory
)

// Cache memoizes successful results by (dataset fingerprint, configuration)
// key in a size-bounded LRU: beyond the entry or byte cap the least
// recently used results are evicted, so a long-lived server's cache memory
// stays flat under sustained novel traffic. It is safe for concurrent use
// by many scheduler runs — secreta-serve shares one across all jobs — and
// deduplicates in-flight computations: concurrent requests for the same
// key run it once and share the result. Results handed out are shared, not
// copied; callers must treat them as immutable.
type Cache struct {
	lru     *registry.LRU
	mu      sync.Mutex // guards flights, backing and the counters
	flights map[string]*flight
	backing CacheBacking // nil: RAM-only
	hits    uint64
	misses  uint64
	// diskHits counts lookups served by rehydrating a persisted entry
	// (a subset of hits); diskErrors counts backing failures, which
	// degrade to misses/unsaved entries rather than failing the run.
	// diskTransient is the transient-classed subset of diskErrors.
	diskHits      uint64
	diskErrors    uint64
	diskTransient uint64
}

// flight is one in-progress computation. done is closed when the leader
// finishes; result carries its successful outcome directly to the
// waiters, so in-flight dedup holds even when the bounded cache rejects
// or immediately evicts the entry — a result bigger than the byte cap
// must not turn N concurrent identical requests into N serial
// recomputations. A failed flight leaves result nil and the waiters
// re-claim.
type flight struct {
	done   chan struct{}
	result *Result
}

// NewCache builds a result cache with the default caps.
func NewCache() *Cache {
	return NewCacheSized(DefaultCacheEntries, DefaultCacheBytes)
}

// NewCacheSized builds a result cache bounded by maxEntries entries and
// maxBytes of approximate result memory (the anonymized dataset dominates
// a result's size). A cap <= 0 disables that bound.
func NewCacheSized(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		lru:     registry.NewLRU(maxEntries, maxBytes),
		flights: make(map[string]*flight),
	}
}

// lookup answers key from RAM or, failing that, from the durable
// backing: a persisted entry is decoded (the caller's cfg is content-
// equal to the producer's, so it is re-attached), promoted into the RAM
// LRU, and counted as a hit. Backing errors degrade to a miss.
func (c *Cache) lookup(key string, cfg Config) (*Result, bool) {
	if v, ok := c.lru.Get(key); ok {
		c.countHit()
		return v.(*Result), true
	}
	c.mu.Lock()
	b := c.backing
	c.mu.Unlock()
	if b == nil {
		return nil, false
	}
	data, err := b.LoadResult(key)
	if err != nil {
		c.countDiskError(err)
		return nil, false
	}
	if data == nil {
		return nil, false
	}
	r, err := decodeResult(data, cfg)
	if err != nil {
		c.countDiskError(err)
		return nil, false
	}
	c.lru.Put(key, r, resultCost(r))
	c.mu.Lock()
	c.hits++
	c.diskHits++
	c.mu.Unlock()
	return r, true
}

func (c *Cache) countDiskError(err error) {
	c.mu.Lock()
	c.diskErrors++
	if faultfs.IsTransient(err) {
		c.diskTransient++
	}
	c.mu.Unlock()
}

// countHit records a cache-backed answer that skipped computation —
// an LRU hit or a result handed over by a finishing flight.
func (c *Cache) countHit() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

// claim registers the caller as the computer of key. When another flight
// is already up, it returns leader=false and that flight; its done
// channel closes when the leader finishes.
func (c *Cache) claim(key string) (leader bool, f *flight) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		return false, f
	}
	c.flights[key] = &flight{done: make(chan struct{})}
	c.misses++
	return true, nil
}

// release ends the caller's flight, publishing r (nil when the run
// failed) to the waiters and waking them.
func (c *Cache) release(key string, r *Result) {
	c.mu.Lock()
	f := c.flights[key]
	delete(c.flights, key)
	c.mu.Unlock()
	if f != nil {
		f.result = r
		close(f.done)
	}
}

// put inserts into the RAM LRU only; callers spill separately, after
// releasing any single-flight waiters.
func (c *Cache) put(key string, r *Result) {
	c.lru.Put(key, r, resultCost(r))
}

// spill writes the entry through to the durable backing. A failure here
// only costs post-restart reuse; the RAM entry and the job's own result
// are unaffected.
func (c *Cache) spill(key string, r *Result) {
	c.mu.Lock()
	b := c.backing
	c.mu.Unlock()
	if b == nil {
		return
	}
	data, err := encodeResult(r)
	if err == nil {
		err = b.SaveResult(key, data)
	}
	if err != nil {
		c.countDiskError(err)
	}
}

// resultCost approximates a cached Result's resident size for the byte
// cap: the anonymized dataset dominates; config, indicators and phase
// timings are a small constant.
func resultCost(r *Result) int64 {
	var n int64 = 512
	if r.Anonymized != nil {
		n += r.Anonymized.ApproxBytes()
	}
	return n
}

// Stats snapshots the cache counters. Hits/Misses are the scheduler-level
// counters (misses = computations); occupancy and eviction numbers come
// from the underlying LRU.
func (c *Cache) Stats() CacheStats {
	ls := c.lru.Stats()
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		DiskHits:      c.diskHits,
		DiskErrors:    c.diskErrors,
		DiskTransient: c.diskTransient,
		Entries:       ls.Entries,
		Bytes:         ls.Bytes,
		MaxEntries:    ls.MaxEntries,
		MaxBytes:      ls.MaxBytes,
		Evictions:     ls.Evictions,
		Rejected:      ls.Rejected,
	}
}
