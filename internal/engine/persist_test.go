package engine

import (
	"context"
	"errors"
	"testing"
)

// mapBacking is an in-memory CacheBacking standing in for the on-disk
// store: it survives across Cache instances the way a data dir survives
// across processes.
type mapBacking struct {
	m     map[string][]byte
	saves int
	fail  bool
}

func newMapBacking() *mapBacking { return &mapBacking{m: make(map[string][]byte)} }

func (b *mapBacking) SaveResult(key string, data []byte) error {
	if b.fail {
		return errors.New("disk full")
	}
	b.m[key] = append([]byte(nil), data...)
	b.saves++
	return nil
}

func (b *mapBacking) LoadResult(key string) ([]byte, error) {
	if b.fail {
		return nil, errors.New("io error")
	}
	data, ok := b.m[key]
	if !ok {
		return nil, nil
	}
	return data, nil
}

// TestCachePersistsAcrossInstances is the restart story at engine level:
// a result computed under one Cache is a hit under a fresh Cache sharing
// the same backing, with the anonymized dataset and indicators intact.
func TestCachePersistsAcrossInstances(t *testing.T) {
	ds, hs, _, _ := fixture(t)
	backing := newMapBacking()
	cfg := Config{Mode: Relational, Algorithm: "cluster", K: 4, Hierarchies: hs}

	cacheA := NewCacheSized(8, 0)
	cacheA.SetBacking(backing)
	schedA := NewScheduler(1, cacheA)
	first, err := schedA.RunAll(context.Background(), ds, []Config{cfg})
	if err != nil || first[0].Err != nil {
		t.Fatal(err, first[0].Err)
	}
	if backing.saves != 1 {
		t.Fatalf("saves=%d want 1 (write-through on put)", backing.saves)
	}

	// "Restart": a brand-new cache over the same backing.
	cacheB := NewCacheSized(8, 0)
	cacheB.SetBacking(backing)
	schedB := NewScheduler(1, cacheB)
	var hit bool
	var again *Result
	for item := range schedB.Stream(context.Background(), ds, []Config{cfg}) {
		hit, again = item.CacheHit, item.Result
	}
	if !hit {
		t.Fatal("fresh cache over a warm backing missed")
	}
	if again.Err != nil {
		t.Fatal(again.Err)
	}
	if again.Anonymized == nil || again.Anonymized.Fingerprint() != first[0].Anonymized.Fingerprint() {
		t.Fatal("rehydrated anonymized dataset differs from the computed one")
	}
	if again.Indicators != first[0].Indicators {
		t.Fatalf("rehydrated indicators %+v != %+v", again.Indicators, first[0].Indicators)
	}
	if again.Runtime != first[0].Runtime {
		t.Fatalf("rehydrated runtime %v != %v", again.Runtime, first[0].Runtime)
	}
	s := cacheB.Stats()
	if s.DiskHits != 1 || s.Hits != 1 {
		t.Fatalf("stats %+v: want exactly one (disk) hit", s)
	}

	// The promoted entry now lives in RAM: a third run hits without
	// touching the backing.
	backing.fail = true
	var hit3 bool
	for item := range schedB.Stream(context.Background(), ds, []Config{cfg}) {
		hit3 = item.CacheHit
	}
	if !hit3 {
		t.Fatal("promoted entry not served from RAM")
	}
	if got := cacheB.Stats().DiskErrors; got != 0 {
		t.Fatalf("RAM hit touched the failing backing (%d disk errors)", got)
	}
}

// TestCacheBackingFailuresDegrade verifies persistence can never fail a
// job: saves and loads that error are counted and ignored.
func TestCacheBackingFailuresDegrade(t *testing.T) {
	ds, hs, _, _ := fixture(t)
	backing := newMapBacking()
	backing.fail = true
	cache := NewCacheSized(8, 0)
	cache.SetBacking(backing)
	sched := NewScheduler(1, cache)
	cfg := Config{Mode: Relational, Algorithm: "cluster", K: 3, Hierarchies: hs}
	res, err := sched.RunAll(context.Background(), ds, []Config{cfg})
	if err != nil || res[0].Err != nil {
		t.Fatal(err, res[0].Err)
	}
	s := cache.Stats()
	// One failed load (lookup) and one failed save (put).
	if s.DiskErrors != 2 {
		t.Fatalf("disk_errors=%d want 2", s.DiskErrors)
	}
	if s.Entries != 1 {
		t.Fatal("RAM cache must still hold the result")
	}
}

// TestEncodeDecodeResultRoundTrip exercises the serializer directly,
// including the phase timings the scheduler-level tests don't inspect.
func TestEncodeDecodeResultRoundTrip(t *testing.T) {
	ds, hs, _, _ := fixture(t)
	r := Run(ds, Config{Mode: Relational, Algorithm: "topdown", K: 2, Hierarchies: hs})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	data, err := encodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeResult(data, r.Config)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Phases) != len(r.Phases) {
		t.Fatalf("phases %d != %d", len(got.Phases), len(r.Phases))
	}
	for i := range r.Phases {
		if got.Phases[i] != r.Phases[i] {
			t.Fatalf("phase %d: %+v != %+v", i, got.Phases[i], r.Phases[i])
		}
	}
	if got.Anonymized.Fingerprint() != r.Anonymized.Fingerprint() {
		t.Fatal("anonymized dataset did not round-trip")
	}
	if _, err := decodeResult([]byte("{garbage"), r.Config); err == nil {
		t.Fatal("corrupt entry decoded")
	}
}
