package engine

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"secreta/internal/dataset"
	"secreta/internal/rt"
)

// grid builds a mixed relational/transactional/RT configuration grid over
// the fixture — the workload for determinism and equivalence checks.
func grid(t testing.TB) (*dataset.Dataset, []Config) {
	t.Helper()
	ds, hs, ih, w := fixture(t)
	var cfgs []Config
	for _, k := range []int{3, 5} {
		cfgs = append(cfgs,
			Config{Mode: Relational, Algorithm: "cluster", K: k, Hierarchies: hs, Workload: w},
			Config{Mode: Relational, Algorithm: "incognito", K: k, Hierarchies: hs},
			Config{Mode: Transactional, Algorithm: "apriori", K: k, M: 2, ItemHierarchy: ih},
			Config{Mode: RT, RelAlgo: "cluster", TransAlgo: "apriori", Flavor: rt.RMerge,
				K: k, M: 2, Delta: 0.3, Hierarchies: hs, ItemHierarchy: ih, Workload: w},
		)
	}
	return ds, cfgs
}

func sameDataset(a, b *dataset.Dataset) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Fingerprint() == b.Fingerprint()
}

// TestSchedulerDeterminism pins the equivalence contract: serial execution,
// wide parallel execution, and the legacy RunAll facade all produce
// identical indicators and anonymized outputs for every configuration.
func TestSchedulerDeterminism(t *testing.T) {
	ds, cfgs := grid(t)
	serial, err := NewScheduler(1, nil).RunAll(context.Background(), ds, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewScheduler(8, nil).RunAll(context.Background(), ds, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	legacy := RunAll(ds, cfgs, 4)
	for i := range cfgs {
		label := cfgs[i].DisplayLabel()
		if serial[i].Err != nil {
			t.Fatalf("%s: %v", label, serial[i].Err)
		}
		for name, got := range map[string]*Result{"workers=8": parallel[i], "RunAll": legacy[i]} {
			if got.Err != nil {
				t.Fatalf("%s (%s): %v", label, name, got.Err)
			}
			if !reflect.DeepEqual(serial[i].Indicators, got.Indicators) {
				t.Errorf("%s (%s): indicators diverge from serial run:\n  serial: %+v\n  other:  %+v",
					label, name, serial[i].Indicators, got.Indicators)
			}
			if !sameDataset(serial[i].Anonymized, got.Anonymized) {
				t.Errorf("%s (%s): anonymized output diverges from serial run", label, name)
			}
		}
	}
}

func TestSchedulerStreamCoversAllIndices(t *testing.T) {
	ds, cfgs := grid(t)
	seen := make(map[int]bool)
	for item := range NewScheduler(4, nil).Stream(context.Background(), ds, cfgs) {
		if seen[item.Index] {
			t.Fatalf("index %d emitted twice", item.Index)
		}
		seen[item.Index] = true
		if item.Result == nil {
			t.Fatalf("index %d: nil result", item.Index)
		}
	}
	if len(seen) != len(cfgs) {
		t.Fatalf("emitted %d items, want %d", len(seen), len(cfgs))
	}
}

// TestSchedulerCancellation checks that a cancelled context stops the
// stream promptly: the channel closes without emitting the full batch and
// without waiting for the queue to drain.
func TestSchedulerCancellation(t *testing.T) {
	ds, hs, ih, _ := fixture(t)
	base := Config{Mode: RT, RelAlgo: "cluster", TransAlgo: "apriori", Flavor: rt.RMerge,
		K: 5, M: 2, Delta: 0.3, Hierarchies: hs, ItemHierarchy: ih}
	cfgs := make([]Config, 64)
	for i := range cfgs {
		cfgs[i] = base
		cfgs[i].K = 2 + i%7 // vary so no dedup anywhere can collapse the batch
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream := NewScheduler(2, nil).Stream(ctx, ds, cfgs)
	n := 0
	for range stream {
		n++
		if n == 3 {
			cancel()
			break
		}
	}
	// After cancellation the channel must close promptly even though most
	// of the queue never ran.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-stream:
			if !ok {
				if n >= len(cfgs) {
					t.Fatalf("cancellation did not stop the batch: %d results", n)
				}
				return
			}
			n++
		case <-deadline:
			t.Fatal("stream did not close within 5s of cancellation")
		}
	}
}

func TestSchedulerRunAllReportsContextError(t *testing.T) {
	ds, cfgs := grid(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewScheduler(2, nil).RunAll(ctx, ds, cfgs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSchedulerCacheHit checks the memoization contract: a second identical
// batch is served entirely from the cache (asserted via the hit counter)
// and returns the same indicators.
func TestSchedulerCacheHit(t *testing.T) {
	ds, cfgs := grid(t)
	cache := NewCache()
	sched := NewScheduler(4, cache)
	first, err := sched.RunAll(context.Background(), ds, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 0 || s.Misses != uint64(len(cfgs)) || s.Entries != len(cfgs) {
		t.Fatalf("after first run: stats = %+v", s)
	}
	hits := 0
	for item := range sched.Stream(context.Background(), ds, cfgs) {
		if item.CacheHit {
			hits++
		}
		if !reflect.DeepEqual(item.Result.Indicators, first[item.Index].Indicators) {
			t.Errorf("config %d: cached indicators diverge", item.Index)
		}
	}
	if hits != len(cfgs) {
		t.Fatalf("second run: %d cache hits, want %d", hits, len(cfgs))
	}
	if s := cache.Stats(); s.Hits != uint64(len(cfgs)) {
		t.Fatalf("after second run: stats = %+v", s)
	}
}

// TestSchedulerCacheSingleFlight submits the same configuration many times
// concurrently: the computation must run exactly once (one miss), with
// every other worker waiting on the in-flight leader instead of
// recomputing.
func TestSchedulerCacheSingleFlight(t *testing.T) {
	ds, hs, _, _ := fixture(t)
	cfgs := make([]Config, 8)
	for i := range cfgs {
		cfgs[i] = Config{Mode: Relational, Algorithm: "cluster", K: 5, Hierarchies: hs}
	}
	cache := NewCache()
	results, err := NewScheduler(8, cache).RunAll(context.Background(), ds, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("run %d: %v", i, r.Err)
		}
	}
	s := cache.Stats()
	if s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("identical concurrent configs computed %d times (stats %+v), want 1", s.Misses, s)
	}
	if s.Hits != uint64(len(cfgs))-1 {
		t.Fatalf("hits = %d, want %d", s.Hits, len(cfgs)-1)
	}
}

// TestSchedulerCacheHitCarriesCallersConfig guards against label
// misattribution: a cache hit must answer with the requesting config, not
// the one that first populated the entry.
func TestSchedulerCacheHitCarriesCallersConfig(t *testing.T) {
	ds, hs, _, _ := fixture(t)
	cache := NewCache()
	sched := NewScheduler(1, cache)
	cfg := Config{Label: "first", Mode: Relational, Algorithm: "cluster", K: 5, Hierarchies: hs}
	if _, err := sched.RunAll(context.Background(), ds, []Config{cfg}); err != nil {
		t.Fatal(err)
	}
	cfg.Label = "second"
	var item Item
	for it := range sched.Stream(context.Background(), ds, []Config{cfg}) {
		item = it
	}
	if !item.CacheHit {
		t.Fatal("second identical run was not a cache hit")
	}
	if got := item.Result.Config.Label; got != "second" {
		t.Fatalf("cache hit reported label %q, want the caller's %q", got, "second")
	}
}

// TestSchedulerCacheKeysDistinguishInputs guards the key derivation: a
// changed parameter or a changed dataset must miss.
func TestSchedulerCacheKeysDistinguishInputs(t *testing.T) {
	ds, hs, _, _ := fixture(t)
	cache := NewCache()
	sched := NewScheduler(1, cache)
	cfg := Config{Mode: Relational, Algorithm: "cluster", K: 5, Hierarchies: hs}
	run := func(d *dataset.Dataset, c Config) {
		t.Helper()
		if _, err := sched.RunAll(context.Background(), d, []Config{c}); err != nil {
			t.Fatal(err)
		}
	}
	run(ds, cfg)
	cfg2 := cfg
	cfg2.K = 6
	run(ds, cfg2)
	ds2 := ds.Clone()
	ds2.Records = ds2.Records[:ds2.Len()-1]
	run(ds2, cfg)
	if s := cache.Stats(); s.Hits != 0 || s.Misses != 3 || s.Entries != 3 {
		t.Fatalf("distinct inputs collided: stats = %+v", s)
	}
}

// TestWorkersDefault pins the pool-size derivation: an explicit count
// wins, the default is min(configurations, GOMAXPROCS), and the result
// never drops below one. The old default capped at a hardcoded 8, which
// both oversubscribed small machines and starved larger ones.
func TestWorkersDefault(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	s := NewScheduler(0, nil)
	if got := s.Workers(2); got != 2 {
		t.Fatalf("Workers(2) = %d, want 2 (one per config)", got)
	}
	if got := s.Workers(16); got != 4 {
		t.Fatalf("Workers(16) = %d, want GOMAXPROCS=4", got)
	}
	if got := s.Workers(0); got != 1 {
		t.Fatalf("Workers(0) = %d, want floor of 1", got)
	}
	if got := NewScheduler(3, nil).Workers(100); got != 3 {
		t.Fatalf("explicit Workers(100) = %d, want configured 3", got)
	}
}
