package engine

import (
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/query"
)

func TestEvaluateRelationalOnlyIndicators(t *testing.T) {
	ds, hs, _, _ := fixture(t)
	res := Run(ds, Config{Mode: Relational, Algorithm: "cluster", K: 4, Hierarchies: hs})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	ind := res.Indicators
	if ind.TransactionGCP != 0 || ind.KMAnonymous {
		t.Errorf("transaction indicators set for relational run: %+v", ind)
	}
	if ind.Classes <= 0 || ind.MinClassSize < 4 {
		t.Errorf("class stats: %+v", ind)
	}
	if ind.CAVG < 1 {
		t.Errorf("CAVG = %v, want >= 1", ind.CAVG)
	}
}

func TestEvaluateTransactionalOnlyIndicators(t *testing.T) {
	ds, _, ih, _ := fixture(t)
	res := Run(ds, Config{Mode: Transactional, Algorithm: "apriori", K: 3, M: 2, ItemHierarchy: ih})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	ind := res.Indicators
	if ind.GCP != 0 || ind.Classes != 0 {
		t.Errorf("relational indicators set for transaction run: %+v", ind)
	}
	if !ind.KMAnonymous {
		t.Error("k^m flag not set")
	}
}

func TestEvaluateUnknownQIFails(t *testing.T) {
	ds, hs, _, _ := fixture(t)
	if _, err := Evaluate(ds, ds, Config{Mode: Relational, QIs: []string{"nope"}, Hierarchies: hs, K: 2}); err == nil {
		t.Error("unknown QI accepted")
	}
}

func TestEvaluateWorkloadErrorPropagates(t *testing.T) {
	ds, hs, _, _ := fixture(t)
	w := &query.Workload{Queries: []query.Query{
		{Predicates: []query.Predicate{{Attr: "NoSuchAttr", Values: []string{"x"}}}},
	}}
	res := Run(ds, Config{Mode: Relational, Algorithm: "cluster", K: 2, Hierarchies: hs, Workload: w})
	if res.Err == nil {
		t.Error("broken workload did not surface an error")
	}
}

func TestEvaluateEmptyDatasetIsBenign(t *testing.T) {
	empty := dataset.New([]dataset.Attribute{{Name: "A"}}, "")
	ind, err := Evaluate(empty, empty, Config{Mode: Relational, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ind.GCP != 0 || ind.Classes != 0 {
		t.Errorf("empty dataset indicators: %+v", ind)
	}
}

func TestRunRhoViaEngine(t *testing.T) {
	ds, _, _, _ := fixture(t)
	h := ds.ItemHistogram()
	res := Run(ds, Config{
		Mode: Transactional, Algorithm: "rho",
		K: 1, M: 2, Rho: 0.5, Sensitive: []string{h[0].Value},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Anonymized == nil || len(res.Phases) == 0 {
		t.Error("rho run incomplete")
	}
}
