package engine

import (
	"context"
	"testing"
)

// TestCacheByteCapUnderSustainedLoad pushes a stream of distinct
// configurations through one shared cache and checks the invariant the old
// unbounded cache violated: resident bytes never exceed the configured cap,
// no matter how much novel work flows through a long-lived scheduler.
func TestCacheByteCapUnderSustainedLoad(t *testing.T) {
	ds, hs, _, _ := fixture(t)
	// Size the cap to hold only a few results, so sustained load must evict.
	res := Run(ds, Config{Mode: Relational, Algorithm: "cluster", K: 2, Hierarchies: hs})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	cap3 := 3 * resultCost(res)
	cache := NewCacheSized(0, cap3)
	sched := NewScheduler(4, cache)

	var cfgs []Config
	for k := 2; k <= 13; k++ {
		cfgs = append(cfgs, Config{Mode: Relational, Algorithm: "cluster", K: k, Hierarchies: hs})
	}
	for round := 0; round < 3; round++ {
		for item := range sched.Stream(context.Background(), ds, cfgs) {
			if item.Result.Err != nil {
				t.Fatalf("k=%d: %v", item.Result.Config.K, item.Result.Err)
			}
			if s := cache.Stats(); s.Bytes > s.MaxBytes {
				t.Fatalf("cache exceeded its byte cap: %d > %d", s.Bytes, s.MaxBytes)
			}
		}
	}
	s := cache.Stats()
	if s.Evictions == 0 {
		t.Error("sustained distinct load never evicted; the cap is not biting")
	}
	if s.Entries >= len(cfgs) {
		t.Errorf("cache holds %d entries for a cap of ~3 results", s.Entries)
	}
	// A cyclic scan over 12 distinct configs through a ~3-result cache is
	// nearly pure thrash (the hit path is covered by
	// TestCacheHitStillServedAfterEvictions). "Nearly": with 4 workers a
	// round's last few inserts can still be resident when the next round
	// looks their keys up, so the occasional hit is legitimate — but every
	// run must be accounted for, and the overwhelming majority must be
	// real computations.
	runs := uint64(3 * len(cfgs))
	if s.Hits+s.Misses != runs {
		t.Errorf("hits %d + misses %d != %d runs", s.Hits, s.Misses, runs)
	}
	if s.Misses < runs-uint64(len(cfgs)) {
		t.Errorf("misses = %d of %d runs; a thrashing cache should compute almost every time", s.Misses, runs)
	}
}

// TestFlightHandsResultToWaiters pins the dedup guarantee under a hostile
// byte cap: even when the computed result is too large for the cache to
// retain, concurrent duplicates must receive the leader's result instead
// of recomputing serially.
func TestFlightHandsResultToWaiters(t *testing.T) {
	c := NewCacheSized(0, 1) // byte cap of 1: every real result is rejected
	leader, _ := c.claim("k")
	if !leader {
		t.Fatal("first claim should lead")
	}
	if again, _ := c.claim("k"); again {
		t.Fatal("second claim should wait, not lead")
	}
	_, fl := c.claim("k")
	r := &Result{Config: Config{Label: "x"}}
	c.put("k", r) // rejected by the cap
	c.release("k", r)
	<-fl.done
	if fl.result != r {
		t.Fatal("waiter did not receive the leader's result")
	}
	if _, ok := c.lookup("k", Config{}); ok {
		t.Fatal("oversized result unexpectedly resident")
	}
	if s := c.Stats(); s.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected)
	}
}

// TestCacheHitStillServedAfterEvictions verifies the LRU keeps the most
// recently used result live: re-running the same configuration back to
// back is a cache hit even with a tiny cap.
func TestCacheHitStillServedAfterEvictions(t *testing.T) {
	ds, hs, _, _ := fixture(t)
	cache := NewCacheSized(2, 0)
	sched := NewScheduler(1, cache)
	cfg := Config{Mode: Relational, Algorithm: "cluster", K: 4, Hierarchies: hs}

	first, err := sched.RunAll(context.Background(), ds, []Config{cfg})
	if err != nil || first[0].Err != nil {
		t.Fatal(err, first[0].Err)
	}
	hit := false
	for item := range sched.Stream(context.Background(), ds, []Config{cfg}) {
		hit = item.CacheHit
	}
	if !hit {
		t.Error("immediate re-run was not served from the cache")
	}
}
