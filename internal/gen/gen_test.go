package gen

import (
	"reflect"
	"testing"
)

func TestCensusShape(t *testing.T) {
	ds := Census(Config{Records: 500, Items: 50, Seed: 1})
	if ds.Len() != 500 {
		t.Fatalf("records = %d", ds.Len())
	}
	if len(ds.Attrs) != 5 || !ds.HasTransaction() {
		t.Fatalf("schema = %v, trans=%q", ds.Attrs, ds.TransName)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	st := ds.SummarizeTransactions()
	if st.MinSize < 1 || st.MaxSize > 6 {
		t.Errorf("basket sizes = %+v", st)
	}
	sum, err := ds.Summarize(0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Min < 18 || sum.Max > 89 {
		t.Errorf("ages = %+v", sum)
	}
}

func TestCensusDeterministic(t *testing.T) {
	a := Census(Config{Records: 100, Items: 20, Seed: 42})
	b := Census(Config{Records: 100, Items: 20, Seed: 42})
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Error("same seed produced different data")
	}
	c := Census(Config{Records: 100, Items: 20, Seed: 43})
	if reflect.DeepEqual(a.Records, c.Records) {
		t.Error("different seeds produced identical data")
	}
}

func TestCensusZipfSkew(t *testing.T) {
	ds := Census(Config{Records: 2000, Items: 100, Seed: 7})
	h := ds.ItemHistogram()
	if len(h) < 10 {
		t.Fatalf("too few distinct items: %d", len(h))
	}
	// Zipf: the most popular item should dominate the median item.
	if h[0].Count < 5*h[len(h)/2].Count {
		t.Errorf("no skew: top=%d median=%d", h[0].Count, h[len(h)/2].Count)
	}
}

func TestCensusNoTransaction(t *testing.T) {
	ds := Census(Config{Records: 50, Items: 0, Seed: 1})
	if ds.HasTransaction() {
		t.Error("transaction attribute present with Items=0")
	}
	if _, err := ItemHierarchy(ds, 2); err == nil {
		t.Error("ItemHierarchy accepted itemless dataset")
	}
}

func TestHierarchiesCoverData(t *testing.T) {
	ds := Census(Config{Records: 300, Items: 30, Seed: 3})
	hs, err := Hierarchies(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range ds.Attrs {
		h := hs[a.Name]
		if h == nil {
			t.Fatalf("no hierarchy for %q", a.Name)
		}
		for _, v := range ds.Domain(i) {
			if !h.Contains(v) {
				t.Fatalf("hierarchy %q misses value %q", a.Name, v)
			}
		}
		if err := h.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	ih, err := ItemHierarchy(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range ds.ItemDomain() {
		if !ih.Contains(it) {
			t.Fatalf("item hierarchy misses %q", it)
		}
	}
}

func TestItemName(t *testing.T) {
	if ItemName(3) != "i0003" || ItemName(123) != "i0123" {
		t.Errorf("ItemName = %q, %q", ItemName(3), ItemName(123))
	}
}

func TestDefaultsFill(t *testing.T) {
	ds := Census(Config{})
	if ds.Len() != 1000 {
		t.Errorf("default records = %d", ds.Len())
	}
	var c Config
	c.fill()
	if c.MaxBasket != 6 || c.ZipfS != 1.2 {
		t.Errorf("defaults = %+v", c)
	}
}
