// Package gen produces the synthetic datasets this reproduction uses in
// place of SECRETA's demo data (which is not redistributable): census-like
// relational records (age, gender, zipcode, education, marital status) and
// Zipf-distributed market-basket transaction attributes, the two data
// shapes the paper's motivating applications (marketing, healthcare) rely
// on. All generation is seeded and reproducible.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
)

// Config tunes the generator.
type Config struct {
	// Records is the number of records (default 1000).
	Records int
	// Items is the size of the transaction item domain; 0 disables the
	// transaction attribute.
	Items int
	// MaxBasket is the maximum basket size (default 6, min 1).
	MaxBasket int
	// ZipfS is the Zipf skew of item popularity (default 1.2; must be >1).
	ZipfS float64
	// Seed makes generation reproducible.
	Seed int64
}

func (c *Config) fill() {
	if c.Records <= 0 {
		c.Records = 1000
	}
	if c.MaxBasket <= 0 {
		c.MaxBasket = 6
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
}

var (
	genders   = []string{"M", "F"}
	education = []string{"Primary", "Secondary", "Bachelor", "Master", "Doctorate"}
	marital   = []string{"Single", "Married", "Divorced", "Widowed"}
)

// Census generates a census-like RT-dataset with attributes Age (numeric),
// Gender, Zip, Education, Marital (categorical) and, when cfg.Items > 0, a
// transaction attribute "Items" holding Zipf-skewed baskets over items
// i000..iNNN.
func Census(cfg Config) *dataset.Dataset {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	trans := ""
	if cfg.Items > 0 {
		trans = "Items"
	}
	ds := dataset.New([]dataset.Attribute{
		{Name: "Age", Kind: dataset.Numeric},
		{Name: "Gender", Kind: dataset.Categorical},
		{Name: "Zip", Kind: dataset.Categorical},
		{Name: "Education", Kind: dataset.Categorical},
		{Name: "Marital", Kind: dataset.Categorical},
	}, trans)

	var zipf *rand.Zipf
	if cfg.Items > 0 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Items-1))
	}
	for i := 0; i < cfg.Records; i++ {
		age := 18 + int(math.Abs(rng.NormFloat64())*14)
		if age > 89 {
			age = 89
		}
		zip := fmt.Sprintf("%05d", 10000+rng.Intn(90)*100)
		rec := dataset.Record{Values: []string{
			strconv.Itoa(age),
			genders[rng.Intn(len(genders))],
			zip,
			education[rng.Intn(len(education))],
			marital[rng.Intn(len(marital))],
		}}
		if cfg.Items > 0 {
			n := 1 + rng.Intn(cfg.MaxBasket)
			seen := make(map[uint64]bool, n)
			for len(seen) < n {
				seen[zipf.Uint64()] = true
			}
			for id := range seen {
				rec.Items = append(rec.Items, ItemName(int(id)))
			}
		}
		if err := ds.AddRecord(rec); err != nil {
			panic(err) // generator bug: records are constructed consistently
		}
	}
	return ds
}

// ItemName formats item ids as zero-padded labels whose lexicographic order
// matches numeric order, which keeps auto-generated hierarchies aligned.
func ItemName(id int) string { return fmt.Sprintf("i%04d", id) }

// Hierarchies builds hierarchies for every relational attribute of a
// generated dataset (numeric range trees for Age, balanced categorical
// trees elsewhere) with the given fanout.
func Hierarchies(ds *dataset.Dataset, fanout int) (generalize.Set, error) {
	out := make(generalize.Set, len(ds.Attrs))
	for i, a := range ds.Attrs {
		vals := ds.Column(i)
		var h *hierarchy.Hierarchy
		var err error
		if a.Kind == dataset.Numeric {
			h, err = hierarchy.AutoNumeric(a.Name, vals, fanout)
		} else {
			h, err = hierarchy.AutoCategorical(a.Name, vals, fanout)
		}
		if err != nil {
			return nil, fmt.Errorf("gen: hierarchy for %q: %w", a.Name, err)
		}
		out[a.Name] = h
	}
	return out, nil
}

// ItemHierarchy builds a balanced hierarchy over the dataset's item domain.
func ItemHierarchy(ds *dataset.Dataset, fanout int) (*hierarchy.Hierarchy, error) {
	dom := ds.ItemDomain()
	if len(dom) == 0 {
		return nil, fmt.Errorf("gen: dataset has no items")
	}
	return hierarchy.AutoCategorical(ds.TransName, dom, fanout)
}
