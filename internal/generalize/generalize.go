// Package generalize implements the recoding operators anonymization
// algorithms apply to datasets: full-domain recoding driven by lattice level
// vectors (Incognito), cut-based subtree recoding (top-down, bottom-up,
// Apriori), local recoding of record groups to least common ancestors
// (Cluster, LRA), item-set recoding through hierarchy cuts, and record
// suppression.
package generalize

import (
	"fmt"
	"sort"

	"secreta/internal/dataset"
	"secreta/internal/hierarchy"
)

// Suppressed is the value standing for a suppressed cell or item.
const Suppressed = "*"

// Set maps attribute names to their hierarchies.
type Set map[string]*hierarchy.Hierarchy

// ForQIs resolves hierarchies for the given QI column indices, failing when
// one is missing.
func (s Set) ForQIs(ds *dataset.Dataset, qis []int) ([]*hierarchy.Hierarchy, error) {
	out := make([]*hierarchy.Hierarchy, len(qis))
	for i, q := range qis {
		name := ds.Attrs[q].Name
		h := s[name]
		if h == nil {
			return nil, fmt.Errorf("generalize: no hierarchy for attribute %q", name)
		}
		out[i] = h
	}
	return out, nil
}

// FullDomain recodes every QI value of ds to its ancestor levels[i] steps up
// in the attribute's hierarchy, returning a new dataset. levels is aligned
// with qis.
func FullDomain(ds *dataset.Dataset, hs Set, qis []int, levels []int) (*dataset.Dataset, error) {
	if len(levels) != len(qis) {
		return nil, fmt.Errorf("generalize: %d levels for %d QIs", len(levels), len(qis))
	}
	hh, err := hs.ForQIs(ds, qis)
	if err != nil {
		return nil, err
	}
	out := ds.Clone()
	// Memoize per attribute: original value -> generalized value.
	memo := make([]map[string]string, len(qis))
	for i := range memo {
		memo[i] = make(map[string]string)
	}
	for r := range out.Records {
		for i, q := range qis {
			v := out.Records[r].Values[q]
			g, ok := memo[i][v]
			if !ok {
				g, err = hh[i].GeneralizeLevels(v, levels[i])
				if err != nil {
					return nil, err
				}
				memo[i][v] = g
			}
			out.Records[r].Values[q] = g
		}
	}
	return out, nil
}

// ApplyCuts recodes every QI value through its attribute's cut, returning a
// new dataset. cuts is keyed by attribute name and must cover every QI.
func ApplyCuts(ds *dataset.Dataset, cuts map[string]*hierarchy.Cut, qis []int) (*dataset.Dataset, error) {
	for _, q := range qis {
		if cuts[ds.Attrs[q].Name] == nil {
			return nil, fmt.Errorf("generalize: no cut for attribute %q", ds.Attrs[q].Name)
		}
	}
	out := ds.Clone()
	for r := range out.Records {
		for _, q := range qis {
			c := cuts[out.Attrs[q].Name]
			g, err := c.Map(out.Records[r].Values[q])
			if err != nil {
				return nil, err
			}
			out.Records[r].Values[q] = g
		}
	}
	return out, nil
}

// GroupToLCA recodes the QI values of the records at the given indices (in
// place) to the least common ancestor of the group per attribute — the
// local-recoding step of clustering algorithms.
func GroupToLCA(ds *dataset.Dataset, hs Set, qis []int, group []int) error {
	hh, err := hs.ForQIs(ds, qis)
	if err != nil {
		return err
	}
	if len(group) == 0 {
		return nil
	}
	for i, q := range qis {
		vals := make([]string, len(group))
		for j, r := range group {
			vals[j] = ds.Records[r].Values[q]
		}
		lca, err := hh[i].LCASet(vals)
		if err != nil {
			return err
		}
		for _, r := range group {
			ds.Records[r].Values[q] = lca.Value
		}
	}
	return nil
}

// GroupLCAValues computes, without mutating ds, the per-QI LCA values a
// group would be generalized to.
func GroupLCAValues(ds *dataset.Dataset, hs Set, qis []int, group []int) ([]string, error) {
	hh, err := hs.ForQIs(ds, qis)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(qis))
	for i, q := range qis {
		vals := make([]string, len(group))
		for j, r := range group {
			vals[j] = ds.Records[r].Values[q]
		}
		lca, err := hh[i].LCASet(vals)
		if err != nil {
			return nil, err
		}
		out[i] = lca.Value
	}
	return out, nil
}

// SuppressRecord replaces all QI values of record r with the Suppressed
// marker and clears its items.
func SuppressRecord(ds *dataset.Dataset, qis []int, r int) {
	for _, q := range qis {
		ds.Records[r].Values[q] = Suppressed
	}
	ds.Records[r].Items = nil
}

// IsSuppressed reports whether record r has been suppressed (all QI cells
// carry the marker).
func IsSuppressed(ds *dataset.Dataset, qis []int, r int) bool {
	if len(qis) == 0 {
		return false
	}
	for _, q := range qis {
		if ds.Records[r].Values[q] != Suppressed {
			return false
		}
	}
	return true
}

// MapItems recodes an item multiset through a cut over the item hierarchy,
// returning the sorted, deduplicated generalized item set.
func MapItems(items []string, cut *hierarchy.Cut) ([]string, error) {
	if len(items) == 0 {
		return nil, nil
	}
	seen := make(map[string]struct{}, len(items))
	out := make([]string, 0, len(items))
	for _, it := range items {
		g, err := cut.Map(it)
		if err != nil {
			return nil, err
		}
		if _, dup := seen[g]; dup {
			continue
		}
		seen[g] = struct{}{}
		out = append(out, g)
	}
	sort.Strings(out)
	return out, nil
}

// ApplyItemCut recodes the transaction part of every record through the
// cut, returning a new dataset.
func ApplyItemCut(ds *dataset.Dataset, cut *hierarchy.Cut) (*dataset.Dataset, error) {
	out := ds.Clone()
	for r := range out.Records {
		items, err := MapItems(out.Records[r].Items, cut)
		if err != nil {
			return nil, err
		}
		out.Records[r].Items = items
	}
	return out, nil
}

// ApplyItemMapping recodes items via an explicit mapping table (COAT/PCTA
// style generalization, where generalized items are arbitrary item groups
// rather than hierarchy nodes). Items absent from the mapping pass through;
// items mapped to the empty string are suppressed (dropped).
func ApplyItemMapping(ds *dataset.Dataset, mapping map[string]string) *dataset.Dataset {
	out := ds.Clone()
	for r := range out.Records {
		items := out.Records[r].Items
		if len(items) == 0 {
			continue
		}
		seen := make(map[string]struct{}, len(items))
		mapped := make([]string, 0, len(items))
		for _, it := range items {
			g, ok := mapping[it]
			if !ok {
				g = it
			}
			if g == "" {
				continue // suppressed
			}
			if _, dup := seen[g]; dup {
				continue
			}
			seen[g] = struct{}{}
			mapped = append(mapped, g)
		}
		sort.Strings(mapped)
		if len(mapped) == 0 {
			mapped = nil
		}
		out.Records[r].Items = mapped
	}
	return out
}
