package generalize_test

import (
	"fmt"
	"math/rand"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/privacy"
)

// Property: coarsening a cut never decreases the minimum equivalence-class
// size — the monotonicity every bottom-up/top-down algorithm relies on.
func TestCutCoarseningMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		// Random single-attribute dataset over a random hierarchy.
		domainSize := 4 + rng.Intn(20)
		vals := make([]string, domainSize)
		for i := range vals {
			vals[i] = fmt.Sprintf("v%02d", i)
		}
		h, err := hierarchy.AutoCategorical("A", vals, 2+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		ds := dataset.New([]dataset.Attribute{{Name: "A"}}, "")
		n := 10 + rng.Intn(60)
		for i := 0; i < n; i++ {
			rec := dataset.Record{Values: []string{vals[rng.Intn(domainSize)]}}
			if err := ds.AddRecord(rec); err != nil {
				t.Fatal(err)
			}
		}
		cut := hierarchy.NewLeafCut(h)
		prevMin := -1
		for step := 0; step < 50; step++ {
			anon, err := generalize.ApplyCuts(ds, map[string]*hierarchy.Cut{"A": cut}, []int{0})
			if err != nil {
				t.Fatal(err)
			}
			min := privacy.MinClassSize(anon, []int{0})
			if prevMin >= 0 && min < prevMin {
				t.Fatalf("trial %d: min class size dropped %d -> %d after coarsening", trial, prevMin, min)
			}
			prevMin = min
			// Coarsen a random non-root cut node.
			var candidates []string
			for _, v := range cut.Values() {
				if nd := h.Node(v); nd != nil && nd.Parent != nil {
					candidates = append(candidates, v)
				}
			}
			if len(candidates) == 0 {
				break
			}
			if err := cut.Generalize(candidates[rng.Intn(len(candidates))]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// Property: FullDomain at a dominating level vector yields classes that are
// coarsenings — min class size is monotone in the level vector.
func TestFullDomainLevelMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	vals := make([]string, 12)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%02d", i)
	}
	h, err := hierarchy.AutoCategorical("A", vals, 2)
	if err != nil {
		t.Fatal(err)
	}
	hs := generalize.Set{"A": h}
	ds := dataset.New([]dataset.Attribute{{Name: "A"}}, "")
	for i := 0; i < 80; i++ {
		rec := dataset.Record{Values: []string{vals[rng.Intn(len(vals))]}}
		if err := ds.AddRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	prev := -1
	for lvl := 0; lvl <= h.Height(); lvl++ {
		anon, err := generalize.FullDomain(ds, hs, []int{0}, []int{lvl})
		if err != nil {
			t.Fatal(err)
		}
		min := privacy.MinClassSize(anon, []int{0})
		if prev >= 0 && min < prev {
			t.Fatalf("min class size dropped %d -> %d at level %d", prev, min, lvl)
		}
		prev = min
	}
	if prev != ds.Len() {
		t.Errorf("root level min class = %d, want %d", prev, ds.Len())
	}
}
