package generalize

import (
	"reflect"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/hierarchy"
)

func testHierarchies(t testing.TB) Set {
	t.Helper()
	age, err := hierarchy.NewBuilder("Age").
		Add("Any", "[20-29]").Add("Any", "[30-49]").
		Add("[20-29]", "25").Add("[20-29]", "27").
		Add("[30-49]", "31").Add("[30-49]", "47").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	gender, err := hierarchy.NewBuilder("Gender").
		Add("Person", "M").Add("Person", "F").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return Set{"Age": age, "Gender": gender}
}

func testData(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds := dataset.New([]dataset.Attribute{
		{Name: "Age", Kind: dataset.Numeric},
		{Name: "Gender", Kind: dataset.Categorical},
	}, "Items")
	for _, r := range []dataset.Record{
		{Values: []string{"25", "M"}, Items: []string{"a", "b"}},
		{Values: []string{"27", "F"}, Items: []string{"a"}},
		{Values: []string{"31", "M"}, Items: []string{"c"}},
		{Values: []string{"47", "F"}, Items: []string{"b", "c"}},
	} {
		if err := ds.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestFullDomain(t *testing.T) {
	ds := testData(t)
	hs := testHierarchies(t)
	out, err := FullDomain(ds, hs, []int{0, 1}, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Records[0].Values[0] != "[20-29]" || out.Records[0].Values[1] != "M" {
		t.Errorf("record 0 = %v", out.Records[0].Values)
	}
	if out.Records[3].Values[0] != "[30-49]" {
		t.Errorf("record 3 = %v", out.Records[3].Values)
	}
	// Original untouched.
	if ds.Records[0].Values[0] != "25" {
		t.Error("FullDomain mutated input")
	}
	// Level beyond height caps at root.
	out, err = FullDomain(ds, hs, []int{0, 1}, []int{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if out.Records[0].Values[0] != "Any" || out.Records[0].Values[1] != "Person" {
		t.Errorf("capped = %v", out.Records[0].Values)
	}
}

func TestFullDomainErrors(t *testing.T) {
	ds := testData(t)
	hs := testHierarchies(t)
	if _, err := FullDomain(ds, hs, []int{0, 1}, []int{1}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := FullDomain(ds, Set{}, []int{0}, []int{1}); err == nil {
		t.Error("missing hierarchy accepted")
	}
	bad := testData(t)
	bad.Records[0].Values[0] = "999"
	if _, err := FullDomain(bad, hs, []int{0}, []int{1}); err == nil {
		t.Error("unknown value accepted")
	}
}

func TestApplyCuts(t *testing.T) {
	ds := testData(t)
	hs := testHierarchies(t)
	ageCut := hierarchy.NewCut(hs["Age"])
	if err := ageCut.Specialize("Any"); err != nil {
		t.Fatal(err)
	}
	genderCut := hierarchy.NewLeafCut(hs["Gender"])
	out, err := ApplyCuts(ds, map[string]*hierarchy.Cut{"Age": ageCut, "Gender": genderCut}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Records[0].Values[0] != "[20-29]" || out.Records[0].Values[1] != "M" {
		t.Errorf("record 0 = %v", out.Records[0].Values)
	}
	if _, err := ApplyCuts(ds, map[string]*hierarchy.Cut{}, []int{0}); err == nil {
		t.Error("missing cut accepted")
	}
}

func TestGroupToLCA(t *testing.T) {
	ds := testData(t)
	hs := testHierarchies(t)
	vals, err := GroupLCAValues(ds, hs, []int{0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, []string{"[20-29]", "Person"}) {
		t.Errorf("GroupLCAValues = %v", vals)
	}
	if ds.Records[0].Values[0] != "25" {
		t.Error("GroupLCAValues mutated input")
	}
	if err := GroupToLCA(ds, hs, []int{0, 1}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if ds.Records[0].Values[0] != "[20-29]" || ds.Records[1].Values[0] != "[20-29]" {
		t.Errorf("group ages = %v %v", ds.Records[0].Values, ds.Records[1].Values)
	}
	if ds.Records[0].Values[1] != "Person" {
		t.Errorf("group gender = %v", ds.Records[0].Values[1])
	}
	// Records outside the group stay put.
	if ds.Records[2].Values[0] != "31" {
		t.Error("GroupToLCA touched non-members")
	}
	if err := GroupToLCA(ds, hs, []int{0}, nil); err != nil {
		t.Errorf("empty group: %v", err)
	}
}

func TestSuppression(t *testing.T) {
	ds := testData(t)
	qis := []int{0, 1}
	SuppressRecord(ds, qis, 1)
	if !IsSuppressed(ds, qis, 1) {
		t.Error("record not suppressed")
	}
	if IsSuppressed(ds, qis, 0) {
		t.Error("wrong record reported suppressed")
	}
	if ds.Records[1].Items != nil {
		t.Error("items survived suppression")
	}
	if IsSuppressed(ds, nil, 0) {
		t.Error("empty QI set reported suppressed")
	}
}

func TestMapItems(t *testing.T) {
	hs := testHierarchies(t)
	items, err := hierarchy.NewBuilder("Items").
		Add("All", "ab").Add("All", "c").
		Add("ab", "a").Add("ab", "b").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = hs
	cut := hierarchy.NewCut(items)
	if err := cut.Specialize("All"); err != nil {
		t.Fatal(err)
	}
	got, err := MapItems([]string{"a", "b", "c"}, cut)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"ab", "c"}) {
		t.Errorf("MapItems = %v", got)
	}
	empty, err := MapItems(nil, cut)
	if err != nil || empty != nil {
		t.Errorf("MapItems(nil) = %v, %v", empty, err)
	}
}

func TestApplyItemCut(t *testing.T) {
	ds := testData(t)
	items, err := hierarchy.NewBuilder("Items").
		Add("All", "ab").Add("All", "c").
		Add("ab", "a").Add("ab", "b").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cut := hierarchy.NewCut(items)
	if err := cut.Specialize("All"); err != nil {
		t.Fatal(err)
	}
	out, err := ApplyItemCut(ds, cut)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Records[0].Items, []string{"ab"}) {
		t.Errorf("record 0 items = %v", out.Records[0].Items)
	}
	if !reflect.DeepEqual(out.Records[3].Items, []string{"ab", "c"}) {
		t.Errorf("record 3 items = %v", out.Records[3].Items)
	}
	if !reflect.DeepEqual(ds.Records[0].Items, []string{"a", "b"}) {
		t.Error("ApplyItemCut mutated input")
	}
}

func TestApplyItemMapping(t *testing.T) {
	ds := testData(t)
	out := ApplyItemMapping(ds, map[string]string{"a": "(a,b)", "b": "(a,b)", "c": ""})
	if !reflect.DeepEqual(out.Records[0].Items, []string{"(a,b)"}) {
		t.Errorf("record 0 = %v", out.Records[0].Items)
	}
	if out.Records[2].Items != nil {
		t.Errorf("suppressed item survived: %v", out.Records[2].Items)
	}
	if !reflect.DeepEqual(out.Records[3].Items, []string{"(a,b)"}) {
		t.Errorf("record 3 = %v", out.Records[3].Items)
	}
}
