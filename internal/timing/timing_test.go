package timing

import (
	"testing"
	"time"
)

func TestStopwatchRecordsPhases(t *testing.T) {
	sw := Start()
	time.Sleep(time.Millisecond)
	sw.Mark("first")
	sw.Mark("second")
	phases := sw.Phases()
	if len(phases) != 2 {
		t.Fatalf("phases = %d", len(phases))
	}
	if phases[0].Name != "first" || phases[1].Name != "second" {
		t.Errorf("names = %v", phases)
	}
	if phases[0].Duration < time.Millisecond {
		t.Errorf("first phase too short: %v", phases[0].Duration)
	}
	if phases[1].Duration < 0 {
		t.Errorf("negative duration: %v", phases[1].Duration)
	}
}

func TestTotal(t *testing.T) {
	phases := []Phase{
		{Name: "a", Duration: 2 * time.Millisecond},
		{Name: "b", Duration: 3 * time.Millisecond},
	}
	if got := Total(phases); got != 5*time.Millisecond {
		t.Errorf("Total = %v", got)
	}
	if Total(nil) != 0 {
		t.Error("Total(nil) != 0")
	}
}
