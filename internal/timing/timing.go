// Package timing provides the phase stopwatch used across anonymization
// algorithms, so the Evaluation mode can plot "the time needed to execute
// the algorithm and its different phases" (Figure 3, plot (b)).
//
// Invariants: phases are reported in the order they were entered, every
// Mark closes the previous phase (no gaps or overlaps between phases of
// one stopwatch), and a Stopwatch is single-goroutine state — each
// algorithm run owns its own.
package timing

import "time"

// Phase is one timed stage of an algorithm run.
type Phase struct {
	Name     string
	Duration time.Duration
}

// Stopwatch accumulates named phases. The zero value is ready to use after
// Start.
type Stopwatch struct {
	last   time.Time
	phases []Phase
}

// Start begins timing; call it before the first phase.
func Start() *Stopwatch {
	return &Stopwatch{last: time.Now()}
}

// Mark closes the current phase with the given name and starts the next.
func (s *Stopwatch) Mark(name string) {
	now := time.Now()
	s.phases = append(s.phases, Phase{Name: name, Duration: now.Sub(s.last)})
	s.last = now
}

// Phases returns the recorded phases in order.
func (s *Stopwatch) Phases() []Phase { return s.phases }

// Total sums all recorded phase durations.
func Total(phases []Phase) time.Duration {
	var t time.Duration
	for _, p := range phases {
		t += p.Duration
	}
	return t
}
