// Package plot is SECRETA's Plotting Module: it renders the data
// visualizations of the Evaluation and Comparison modes — histograms,
// utility-indicator-vs-parameter curves, runtime phase breakdowns — as
// ASCII charts for the terminal and as SVG documents for export. The
// series data is identical to what the paper's QWT widgets display; only
// the rendering medium differs.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve. Lo/Hi, when both set (parallel to Xs),
// define an uncertainty band around the curve — e.g. mean±std across
// benchmark repeats — rendered as a translucent region by SVG and
// ignored by ASCII.
type Series struct {
	Label string
	Xs    []float64
	Ys    []float64
	Lo    []float64
	Hi    []float64
}

// hasBand reports whether the series carries a drawable uncertainty band.
func (s *Series) hasBand() bool {
	return len(s.Lo) > 0 && len(s.Hi) > 0
}

// Kind selects the chart geometry.
type Kind int

const (
	// Line connects points with markers per series.
	Line Kind = iota
	// Bar draws one bar per X position (first series only).
	Bar
)

// Chart is a renderable figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Kind   Kind
	Series []Series
	// XTicks optionally labels bar positions (categorical X axes).
	XTicks []string
}

// NewLine builds a line chart from series.
func NewLine(title, xlabel, ylabel string, series ...Series) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Kind: Line, Series: series}
}

// NewBar builds a bar chart over categorical labels.
func NewBar(title, xlabel, ylabel string, labels []string, values []float64) *Chart {
	xs := make([]float64, len(values))
	for i := range xs {
		xs[i] = float64(i)
	}
	return &Chart{
		Title: title, XLabel: xlabel, YLabel: ylabel, Kind: Bar,
		Series: []Series{{Label: ylabel, Xs: xs, Ys: values}},
		XTicks: labels,
	}
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.Xs {
			if i >= len(s.Ys) {
				break
			}
			x, y := s.Xs[i], s.Ys[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
			ok = true
			// The band must fit inside the plot too.
			if s.hasBand() && i < len(s.Lo) && i < len(s.Hi) {
				if lo := s.Lo[i]; !math.IsNaN(lo) && !math.IsInf(lo, 0) {
					ymin = math.Min(ymin, lo)
				}
				if hi := s.Hi[i]; !math.IsNaN(hi) && !math.IsInf(hi, 0) {
					ymax = math.Max(ymax, hi)
				}
			}
		}
	}
	if !ok {
		return 0, 1, 0, 1, false
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Bars read better anchored at zero.
	if c.Kind == Bar && ymin > 0 {
		ymin = 0
	}
	return xmin, xmax, ymin, ymax, true
}

// ASCII renders the chart as monospace text of roughly width x height
// cells (minimums are enforced).
func (c *Chart) ASCII(width, height int) string {
	if width < 30 {
		width = 30
	}
	if height < 8 {
		height = 8
	}
	xmin, xmax, ymin, ymax, ok := c.bounds()
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title + "\n")
	}
	if !ok {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	const yLabelW = 10
	plotW := width - yLabelW - 1
	plotH := height
	grid := make([][]byte, plotH)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", plotW))
	}
	toCol := func(x float64) int {
		col := int((x - xmin) / (xmax - xmin) * float64(plotW-1))
		if col < 0 {
			col = 0
		}
		if col >= plotW {
			col = plotW - 1
		}
		return col
	}
	toRow := func(y float64) int {
		row := int((ymax - y) / (ymax - ymin) * float64(plotH-1))
		if row < 0 {
			row = 0
		}
		if row >= plotH {
			row = plotH - 1
		}
		return row
	}
	switch c.Kind {
	case Bar:
		if len(c.Series) > 0 {
			s := c.Series[0]
			n := len(s.Ys)
			if n > 0 {
				bw := plotW / n
				if bw < 1 {
					bw = 1
				}
				for i, y := range s.Ys {
					col0 := i * plotW / n
					top := toRow(y)
					base := toRow(math.Max(ymin, 0))
					if top > base {
						top, base = base, top
					}
					for r := top; r <= base; r++ {
						for b := 0; b < bw-1 && col0+b < plotW; b++ {
							grid[r][col0+b] = '#'
						}
					}
				}
			}
		}
	default:
		for si, s := range c.Series {
			m := markers[si%len(markers)]
			prevCol, prevRow := -1, -1
			for i := range s.Xs {
				if i >= len(s.Ys) || math.IsNaN(s.Ys[i]) {
					prevCol = -1
					continue
				}
				col, row := toCol(s.Xs[i]), toRow(s.Ys[i])
				if prevCol >= 0 {
					drawLine(grid, prevCol, prevRow, col, row, '.')
				}
				grid[row][col] = m
				prevCol, prevRow = col, row
			}
		}
	}
	for r := 0; r < plotH; r++ {
		yVal := ymax - (ymax-ymin)*float64(r)/float64(plotH-1)
		label := ""
		if r == 0 || r == plotH-1 || r == plotH/2 {
			label = trimNum(yVal)
		}
		sb.WriteString(fmt.Sprintf("%*s|", yLabelW, label))
		sb.Write(grid[r])
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", yLabelW) + "+" + strings.Repeat("-", plotW) + "\n")
	// X axis labels: min, mid, max (or first/last tick labels for bars).
	lo, mid, hi := trimNum(xmin), trimNum((xmin+xmax)/2), trimNum(xmax)
	if c.Kind == Bar && len(c.XTicks) > 0 {
		lo, hi = c.XTicks[0], c.XTicks[len(c.XTicks)-1]
		mid = ""
		if len(c.XTicks) > 2 {
			mid = c.XTicks[len(c.XTicks)/2]
		}
	}
	axis := make([]byte, plotW)
	for i := range axis {
		axis[i] = ' '
	}
	copy(axis, lo)
	if len(mid) > 0 && plotW/2+len(mid) < plotW {
		copy(axis[plotW/2-len(mid)/2:], mid)
	}
	if len(hi) < plotW {
		copy(axis[plotW-len(hi):], hi)
	}
	sb.WriteString(strings.Repeat(" ", yLabelW+1))
	sb.Write(axis)
	sb.WriteByte('\n')
	if c.XLabel != "" {
		sb.WriteString(strings.Repeat(" ", yLabelW+1) + c.XLabel + "\n")
	}
	if c.Kind != Bar && len(c.Series) > 0 {
		sb.WriteString("legend: ")
		for si, s := range c.Series {
			if si > 0 {
				sb.WriteString("  ")
			}
			sb.WriteByte(markers[si%len(markers)])
			sb.WriteByte(' ')
			sb.WriteString(s.Label)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// drawLine draws a Bresenham segment with the given rune, not overwriting
// markers.
func drawLine(grid [][]byte, x0, y0, x1, y1 int, ch byte) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if y0 >= 0 && y0 < len(grid) && x0 >= 0 && x0 < len(grid[0]) && grid[y0][x0] == ' ' {
			grid[y0][x0] = ch
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}
