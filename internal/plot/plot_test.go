package plot

import (
	"math"
	"strings"
	"testing"
)

func lineChart() *Chart {
	return NewLine("ARE vs k", "k", "ARE",
		Series{Label: "cluster", Xs: []float64{2, 4, 8}, Ys: []float64{0.1, 0.2, 0.4}},
		Series{Label: "incognito", Xs: []float64{2, 4, 8}, Ys: []float64{0.2, 0.5, 0.9}},
	)
}

func TestASCIIContainsStructure(t *testing.T) {
	out := lineChart().ASCII(60, 12)
	if !strings.Contains(out, "ARE vs k") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "legend:") || !strings.Contains(out, "cluster") || !strings.Contains(out, "incognito") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("series markers missing")
	}
	if !strings.Contains(out, "k\n") {
		t.Error("x label missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("too few lines: %d", len(lines))
	}
}

func TestASCIIEmptyChart(t *testing.T) {
	c := NewLine("empty", "x", "y")
	out := c.ASCII(40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart rendering: %q", out)
	}
	c = NewLine("nan", "x", "y", Series{Xs: []float64{1}, Ys: []float64{math.NaN()}})
	if out := c.ASCII(40, 10); !strings.Contains(out, "(no data)") {
		t.Errorf("NaN-only chart rendering: %q", out)
	}
}

func TestASCIIMinimumSizesEnforced(t *testing.T) {
	out := lineChart().ASCII(1, 1)
	if len(strings.Split(out, "\n")) < 8 {
		t.Error("minimum height not enforced")
	}
}

func TestASCIIBar(t *testing.T) {
	c := NewBar("histogram", "value", "count", []string{"a", "b", "c"}, []float64{5, 3, 8})
	out := c.ASCII(50, 10)
	if !strings.Contains(out, "#") {
		t.Error("no bars drawn")
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "c") {
		t.Error("tick labels missing")
	}
}

func TestASCIIConstantSeries(t *testing.T) {
	c := NewLine("flat", "x", "y", Series{Label: "s", Xs: []float64{1, 2}, Ys: []float64{5, 5}})
	out := c.ASCII(40, 8)
	if !strings.Contains(out, "*") {
		t.Error("flat series not drawn")
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg := lineChart().SVG(400, 300)
	for _, want := range []string{"<svg", "</svg>", "polyline", "circle", "ARE vs k", "cluster"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<svg") != 1 {
		t.Error("multiple svg roots")
	}
}

func TestSVGBar(t *testing.T) {
	c := NewBar("hist", "v", "n", []string{"x", "y"}, []float64{1, 2})
	svg := c.SVG(300, 200)
	if !strings.Contains(svg, "<rect") {
		t.Error("no bars in SVG")
	}
	if !strings.Contains(svg, ">x<") {
		t.Error("tick label missing in SVG")
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	c := NewLine("a<b & c", "x", "y", Series{Label: `q"u`, Xs: []float64{0, 1}, Ys: []float64{0, 1}})
	svg := c.SVG(300, 200)
	if strings.Contains(svg, "a<b") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b &amp; c") {
		t.Error("escaped title missing")
	}
	if !strings.Contains(svg, "q&quot;u") {
		t.Error("series label not escaped")
	}
}

func TestSVGEmpty(t *testing.T) {
	c := NewLine("none", "x", "y")
	svg := c.SVG(10, 10) // minimums enforced
	if !strings.Contains(svg, "(no data)") {
		t.Error("empty SVG should say so")
	}
}

func TestSVGSkipsNaNPoints(t *testing.T) {
	c := NewLine("gap", "x", "y", Series{Label: "s", Xs: []float64{0, 1, 2}, Ys: []float64{1, math.NaN(), 3}})
	svg := c.SVG(300, 200)
	if strings.Count(svg, "<circle") != 2 {
		t.Errorf("want 2 circles, got %d", strings.Count(svg, "<circle"))
	}
}
