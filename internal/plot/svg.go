package plot

import (
	"fmt"
	"math"
	"strings"
)

// SVG renders the chart as a standalone SVG document of the given pixel
// size — the Data Export Module's graph export path (SVG instead of the
// paper's PDF/JPG/BMP/PNG, see DESIGN.md).
func (c *Chart) SVG(width, height int) string {
	if width < 200 {
		width = 200
	}
	if height < 150 {
		height = 150
	}
	xmin, xmax, ymin, ymax, ok := c.bounds()
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if c.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="18" text-anchor="middle" font-size="14" font-family="sans-serif">%s</text>`+"\n",
			width/2, esc(c.Title))
	}
	const (
		mLeft   = 60
		mRight  = 20
		mTop    = 30
		mBottom = 50
	)
	pw := width - mLeft - mRight
	ph := height - mTop - mBottom
	if !ok || pw <= 0 || ph <= 0 {
		sb.WriteString(`<text x="20" y="40" font-family="sans-serif">(no data)</text></svg>`)
		return sb.String()
	}
	px := func(x float64) float64 { return mLeft + (x-xmin)/(xmax-xmin)*float64(pw) }
	py := func(y float64) float64 { return mTop + (ymax-y)/(ymax-ymin)*float64(ph) }

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", mLeft, mTop, mLeft, mTop+ph)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", mLeft, mTop+ph, mLeft+pw, mTop+ph)
	// Y ticks.
	for i := 0; i <= 4; i++ {
		y := ymin + (ymax-ymin)*float64(i)/4
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
			mLeft, py(y), mLeft+pw, py(y))
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end" font-size="10" font-family="sans-serif">%s</text>`+"\n",
			mLeft-4, py(y)+3, trimNum(y))
	}
	// X ticks.
	if c.Kind == Bar && len(c.XTicks) > 0 {
		n := len(c.XTicks)
		step := 1
		if n > 12 {
			step = n / 12
		}
		for i := 0; i < n; i += step {
			x := px(float64(i))
			fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle" font-size="9" font-family="sans-serif">%s</text>`+"\n",
				x, mTop+ph+14, esc(c.XTicks[i]))
		}
	} else {
		for i := 0; i <= 4; i++ {
			x := xmin + (xmax-xmin)*float64(i)/4
			fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle" font-size="10" font-family="sans-serif">%s</text>`+"\n",
				px(x), mTop+ph+14, trimNum(x))
		}
	}
	if c.XLabel != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle" font-size="11" font-family="sans-serif">%s</text>`+"\n",
			mLeft+pw/2, height-8, esc(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&sb, `<text x="14" y="%d" text-anchor="middle" font-size="11" font-family="sans-serif" transform="rotate(-90 14 %d)">%s</text>`+"\n",
			mTop+ph/2, mTop+ph/2, esc(c.YLabel))
	}

	colors := []string{"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f"}
	switch c.Kind {
	case Bar:
		if len(c.Series) > 0 {
			s := c.Series[0]
			n := len(s.Ys)
			if n > 0 {
				bw := float64(pw) / float64(n) * 0.8
				for i, y := range s.Ys {
					if math.IsNaN(y) {
						continue
					}
					x := px(float64(i)) - bw/2
					y0 := py(math.Max(ymin, 0))
					y1 := py(y)
					if y1 > y0 {
						y0, y1 = y1, y0
					}
					fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
						x, y1, bw, y0-y1, colors[0])
				}
			}
		}
	default:
		for si, s := range c.Series {
			color := colors[si%len(colors)]
			// Uncertainty band first, so the curve draws on top: the upper
			// edge traced forward, the lower edge back.
			if s.hasBand() {
				var band []string
				for i := range s.Xs {
					if i >= len(s.Hi) || math.IsNaN(s.Hi[i]) {
						continue
					}
					band = append(band, fmt.Sprintf("%.1f,%.1f", px(s.Xs[i]), py(s.Hi[i])))
				}
				for i := len(s.Xs) - 1; i >= 0; i-- {
					if i >= len(s.Lo) || math.IsNaN(s.Lo[i]) {
						continue
					}
					band = append(band, fmt.Sprintf("%.1f,%.1f", px(s.Xs[i]), py(s.Lo[i])))
				}
				if len(band) > 2 {
					fmt.Fprintf(&sb, `<polygon points="%s" fill="%s" fill-opacity="0.15" stroke="none"/>`+"\n",
						strings.Join(band, " "), color)
				}
			}
			var pts []string
			for i := range s.Xs {
				if i >= len(s.Ys) || math.IsNaN(s.Ys[i]) {
					continue
				}
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.Xs[i]), py(s.Ys[i])))
			}
			if len(pts) > 1 {
				fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
					strings.Join(pts, " "), color)
			}
			for _, p := range pts {
				xy := strings.Split(p, ",")
				fmt.Fprintf(&sb, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`+"\n", xy[0], xy[1], color)
			}
			// Legend.
			fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
				mLeft+pw-130, mTop+8+16*si, color)
			fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="10" font-family="sans-serif">%s</text>`+"\n",
				mLeft+pw-116, mTop+17+16*si, esc(s.Label))
		}
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
