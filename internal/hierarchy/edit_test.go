package hierarchy

import (
	"reflect"
	"testing"
)

func TestAddLeaf(t *testing.T) {
	h := ageHierarchy(t)
	if err := h.AddLeaf("[20-29]", "28"); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.Leaves(), []string{"25", "27", "28", "31", "47"}) {
		t.Errorf("leaves = %v", h.Leaves())
	}
	if n := h.Node("[20-29]"); n.LeafCount() != 3 {
		t.Errorf("leaf count not refreshed: %d", n.LeafCount())
	}
	if err := h.AddLeaf("[20-29]", "28"); err == nil {
		t.Error("duplicate accepted")
	}
	if err := h.AddLeaf("nope", "99"); err == nil {
		t.Error("unknown parent accepted")
	}
	if err := h.AddLeaf("Any", ""); err == nil {
		t.Error("empty value accepted")
	}
}

func TestRename(t *testing.T) {
	h := ageHierarchy(t)
	if err := h.Rename("[20-29]", "[20s]"); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Node("[20-29]") != nil || h.Node("[20s]") == nil {
		t.Error("rename not applied to index")
	}
	if got, _ := h.GeneralizeLevels("25", 1); got != "[20s]" {
		t.Errorf("generalize after rename = %q", got)
	}
	if err := h.Rename("nope", "x"); err == nil {
		t.Error("unknown value accepted")
	}
	if err := h.Rename("25", "27"); err == nil {
		t.Error("collision accepted")
	}
	if err := h.Rename("25", ""); err == nil {
		t.Error("empty accepted")
	}
}

func TestRemoveLeaf(t *testing.T) {
	h := ageHierarchy(t)
	if err := h.RemoveLeaf("25"); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.Leaves(), []string{"27", "31", "47"}) {
		t.Errorf("leaves = %v", h.Leaves())
	}
	if h.Root.LeafCount() != 3 {
		t.Errorf("root leaf count = %d", h.Root.LeafCount())
	}
	if err := h.RemoveLeaf("[30-49]"); err == nil {
		t.Error("interior removal accepted")
	}
	if err := h.RemoveLeaf("nope"); err == nil {
		t.Error("unknown value accepted")
	}
	// Removing the last child makes the parent a leaf; removing on up to
	// the root must fail at the root.
	if err := h.RemoveLeaf("27"); err != nil {
		t.Fatal(err)
	}
	if !h.Node("[20-29]").IsLeaf() {
		t.Error("emptied interior node is not a leaf")
	}
	if err := h.RemoveLeaf("[20-29]"); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveLeaf("31"); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveLeaf("47"); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveLeaf("[30-49]"); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveLeaf("Any"); err == nil {
		t.Error("root removal accepted")
	}
}

func TestCollapseNode(t *testing.T) {
	h := ageHierarchy(t)
	if err := h.CollapseNode("[20-29]"); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// 25 and 27 now hang directly under the root.
	if h.Node("25").Parent != h.Root {
		t.Error("children not reattached")
	}
	if h.Height() != 2 { // [30-49] branch still has depth 2
		t.Errorf("height = %d", h.Height())
	}
	if err := h.CollapseNode("25"); err == nil {
		t.Error("leaf collapse accepted")
	}
	if err := h.CollapseNode("Any"); err == nil {
		t.Error("root collapse accepted")
	}
	if err := h.CollapseNode("zzz"); err == nil {
		t.Error("unknown value accepted")
	}
}

func TestMoveSubtree(t *testing.T) {
	h := ageHierarchy(t)
	if err := h.MoveSubtree("25", "[30-49]"); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Node("25").Parent.Value != "[30-49]" {
		t.Error("move not applied")
	}
	if h.Node("[20-29]").LeafCount() != 1 || h.Node("[30-49]").LeafCount() != 3 {
		t.Error("leaf counts not refreshed")
	}
	lca, _ := h.LCA("25", "31")
	if lca.Value != "[30-49]" {
		t.Errorf("LCA after move = %q", lca.Value)
	}
	// No-op move.
	if err := h.MoveSubtree("25", "[30-49]"); err != nil {
		t.Errorf("no-op move failed: %v", err)
	}
	// Cycle.
	if err := h.MoveSubtree("[30-49]", "25"); err == nil {
		t.Error("cycle accepted")
	}
	if err := h.MoveSubtree("Any", "[30-49]"); err == nil {
		t.Error("root move accepted")
	}
	if err := h.MoveSubtree("zzz", "Any"); err == nil {
		t.Error("unknown node accepted")
	}
	if err := h.MoveSubtree("25", "zzz"); err == nil {
		t.Error("unknown parent accepted")
	}
}
