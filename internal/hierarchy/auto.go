package hierarchy

import (
	"fmt"
	"sort"
	"strconv"
)

// Automatic hierarchy generation, the backend of SECRETA's Policy
// Specification Module option "derive hierarchies from the data". Numeric
// domains get balanced range trees; categorical and item domains get
// balanced trees over the sorted domain with synthesized interior labels,
// following the generation scheme of Terrovitis et al. (VLDB J. 2011).

// AutoNumeric builds a balanced hierarchy over the distinct numeric values
// with the given fanout (minimum 2). Interior nodes are labeled with the
// inclusive range they cover, e.g. "[25-40]".
func AutoNumeric(attr string, values []string, fanout int) (*Hierarchy, error) {
	if fanout < 2 {
		fanout = 2
	}
	distinct, err := distinctSortedNumeric(values)
	if err != nil {
		return nil, fmt.Errorf("hierarchy %s: %w", attr, err)
	}
	if len(distinct) == 0 {
		return nil, fmt.Errorf("hierarchy %s: no values", attr)
	}
	label := func(group []*Node) string {
		lo := numericLow(group[0])
		hi := numericHigh(group[len(group)-1])
		return "[" + lo + "-" + hi + "]"
	}
	return autoBuild(attr, distinct, fanout, label)
}

// AutoCategorical builds a balanced hierarchy over the sorted distinct
// values with the given fanout. Interior labels enumerate the covered range
// as "{first..last}".
func AutoCategorical(attr string, values []string, fanout int) (*Hierarchy, error) {
	if fanout < 2 {
		fanout = 2
	}
	distinct := distinctSorted(values)
	if len(distinct) == 0 {
		return nil, fmt.Errorf("hierarchy %s: no values", attr)
	}
	label := func(group []*Node) string {
		first, last := firstLeaf(group[0]), lastLeaf(group[len(group)-1])
		return "{" + first + ".." + last + "}"
	}
	return autoBuild(attr, distinct, fanout, label)
}

// autoBuild layers groups of size fanout bottom-up until one root remains.
func autoBuild(attr string, leaves []string, fanout int, label func([]*Node) string) (*Hierarchy, error) {
	nodes := make(map[string]*Node, 2*len(leaves))
	level := make([]*Node, len(leaves))
	for i, v := range leaves {
		n := &Node{Value: v}
		if nodes[v] != nil {
			return nil, fmt.Errorf("hierarchy %s: duplicate leaf %q", attr, v)
		}
		nodes[v] = n
		level[i] = n
	}
	for len(level) > 1 {
		var next []*Node
		for i := 0; i < len(level); i += fanout {
			j := i + fanout
			if j > len(level) {
				j = len(level)
			}
			group := level[i:j]
			if len(group) == 1 && len(next) > 0 {
				// Avoid chains: fold a trailing singleton into the
				// previous group.
				prev := next[len(next)-1]
				group[0].Parent = prev
				prev.Children = append(prev.Children, group[0])
				relabel(prev, nodes, label)
				continue
			}
			v := label(group)
			// Guard against label collisions with existing values.
			base := v
			for k := 2; nodes[v] != nil; k++ {
				v = fmt.Sprintf("%s#%d", base, k)
			}
			parent := &Node{Value: v, Children: append([]*Node(nil), group...)}
			for _, c := range group {
				c.Parent = parent
			}
			nodes[v] = parent
			next = append(next, parent)
		}
		level = next
	}
	h := &Hierarchy{Attr: attr, Root: level[0], nodes: nodes}
	h.finalize()
	return h, nil
}

// relabel recomputes an interior node's label after its children changed,
// keeping the node index consistent.
func relabel(n *Node, nodes map[string]*Node, label func([]*Node) string) {
	delete(nodes, n.Value)
	v := label(n.Children)
	base := v
	for k := 2; nodes[v] != nil; k++ {
		v = fmt.Sprintf("%s#%d", base, k)
	}
	n.Value = v
	nodes[v] = n
}

func distinctSorted(values []string) []string {
	seen := make(map[string]struct{}, len(values))
	var out []string
	for _, v := range values {
		if v == "" {
			continue
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func distinctSortedNumeric(values []string) ([]string, error) {
	type pair struct {
		s string
		f float64
	}
	seen := make(map[string]struct{}, len(values))
	var ps []pair
	for _, v := range values {
		if v == "" {
			continue
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("non-numeric value %q", v)
		}
		ps = append(ps, pair{v, f})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].f < ps[j].f })
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.s
	}
	return out, nil
}

// numericLow extracts the lowest leaf label under n (leaves are kept in
// sorted order by construction).
func numericLow(n *Node) string { return firstLeaf(n) }

// numericHigh extracts the highest leaf label under n.
func numericHigh(n *Node) string { return lastLeaf(n) }

func firstLeaf(n *Node) string {
	for !n.IsLeaf() {
		n = n.Children[0]
	}
	return n.Value
}

func lastLeaf(n *Node) string {
	for !n.IsLeaf() {
		n = n.Children[len(n.Children)-1]
	}
	return n.Value
}
