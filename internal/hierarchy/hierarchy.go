// Package hierarchy implements domain generalization hierarchies (DGHs),
// the substrate of every hierarchy-based algorithm in SECRETA (all but COAT
// and PCTA, which use policies instead). A Hierarchy is a rooted tree whose
// leaves are the original domain values and whose interior nodes are
// progressively more general values. The package supports parsing and
// serializing path-style CSV files, automatic generation for numeric and
// categorical domains, least-common-ancestor queries, level-based
// generalization for full-domain recoding, and cuts (antichains) for
// subtree-style recoding.
package hierarchy

import (
	"fmt"
	"sort"
)

// Node is one value in the hierarchy tree.
type Node struct {
	Value    string
	Parent   *Node
	Children []*Node

	depth     int // distance from root
	leafCount int // number of leaves in this subtree
}

// Depth returns the node's distance from the root (root = 0).
func (n *Node) Depth() int { return n.depth }

// LeafCount returns the number of leaf values the node covers.
func (n *Node) LeafCount() int { return n.leafCount }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Leaves returns the leaf values covered by the node, in tree order.
func (n *Node) Leaves() []string {
	var out []string
	var walk func(*Node)
	walk = func(m *Node) {
		if m.IsLeaf() {
			out = append(out, m.Value)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// Hierarchy is a DGH for one attribute. Values are unique across the tree.
type Hierarchy struct {
	Attr  string
	Root  *Node
	nodes map[string]*Node
	// height is the maximum leaf depth; full-domain generalization levels
	// range over 0..height.
	height int
	// index caches the dense-ID acceleration structure (see Index); edits
	// clear it.
	index indexCache
}

// Height returns the maximum generalization level (root level).
func (h *Hierarchy) Height() int { return h.height }

// Node returns the node for a value, or nil when the value is unknown.
func (h *Hierarchy) Node(value string) *Node { return h.nodes[value] }

// Contains reports whether value appears anywhere in the hierarchy.
func (h *Hierarchy) Contains(value string) bool { return h.nodes[value] != nil }

// Size returns the total number of nodes.
func (h *Hierarchy) Size() int { return len(h.nodes) }

// Leaves returns all leaf values in tree order.
func (h *Hierarchy) Leaves() []string { return h.Root.Leaves() }

// finalize computes depths, heights and leaf counts after construction.
func (h *Hierarchy) finalize() {
	h.invalidateIndex()
	h.height = 0
	var walk func(n *Node, depth int) int
	walk = func(n *Node, depth int) int {
		n.depth = depth
		if n.IsLeaf() {
			n.leafCount = 1
			if depth > h.height {
				h.height = depth
			}
			return 1
		}
		total := 0
		for _, c := range n.Children {
			total += walk(c, depth+1)
		}
		n.leafCount = total
		return total
	}
	walk(h.Root, 0)
}

// GeneralizeLevels maps value to its ancestor lvl steps up, capping at the
// root. Full-domain recoding at lattice level l applies this to every
// original value. Unknown values return an error.
func (h *Hierarchy) GeneralizeLevels(value string, lvl int) (string, error) {
	n := h.nodes[value]
	if n == nil {
		return "", fmt.Errorf("hierarchy %s: unknown value %q", h.Attr, value)
	}
	for i := 0; i < lvl && n.Parent != nil; i++ {
		n = n.Parent
	}
	return n.Value, nil
}

// LCA returns the least common ancestor node of two values, or an error
// when either is unknown.
func (h *Hierarchy) LCA(a, b string) (*Node, error) {
	na, nb := h.nodes[a], h.nodes[b]
	if na == nil {
		return nil, fmt.Errorf("hierarchy %s: unknown value %q", h.Attr, a)
	}
	if nb == nil {
		return nil, fmt.Errorf("hierarchy %s: unknown value %q", h.Attr, b)
	}
	for na.depth > nb.depth {
		na = na.Parent
	}
	for nb.depth > na.depth {
		nb = nb.Parent
	}
	for na != nb {
		na = na.Parent
		nb = nb.Parent
	}
	return na, nil
}

// LCANodes returns the least common ancestor of two nodes of the same
// hierarchy — LCA without the value lookups, for hot loops that already
// hold node pointers.
func LCANodes(a, b *Node) *Node {
	for a.depth > b.depth {
		a = a.Parent
	}
	for b.depth > a.depth {
		b = b.Parent
	}
	for a != b {
		a = a.Parent
		b = b.Parent
	}
	return a
}

// NCPNode returns the Normalized Certainty Penalty of publishing n —
// NCP without the value lookup, for hot loops that hold node pointers.
func (h *Hierarchy) NCPNode(n *Node) float64 {
	total := h.Root.leafCount
	if total <= 1 {
		return 0
	}
	return float64(n.leafCount-1) / float64(total-1)
}

// LCASet returns the least common ancestor of a non-empty value set.
func (h *Hierarchy) LCASet(values []string) (*Node, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("hierarchy %s: LCA of empty set", h.Attr)
	}
	cur := h.nodes[values[0]]
	if cur == nil {
		return nil, fmt.Errorf("hierarchy %s: unknown value %q", h.Attr, values[0])
	}
	for _, v := range values[1:] {
		n, err := h.LCA(cur.Value, v)
		if err != nil {
			return nil, err
		}
		cur = n
	}
	return cur, nil
}

// NCP returns the Normalized Certainty Penalty of publishing value instead
// of a leaf: (leaves(value)-1) / (totalLeaves-1), i.e. 0 for leaves and 1
// for the root of a non-trivial hierarchy.
func (h *Hierarchy) NCP(value string) (float64, error) {
	n := h.nodes[value]
	if n == nil {
		return 0, fmt.Errorf("hierarchy %s: unknown value %q", h.Attr, value)
	}
	total := h.Root.leafCount
	if total <= 1 {
		return 0, nil
	}
	return float64(n.leafCount-1) / float64(total-1), nil
}

// Covers reports whether general is value itself or one of its ancestors.
func (h *Hierarchy) Covers(general, value string) bool {
	n := h.nodes[value]
	g := h.nodes[general]
	if n == nil || g == nil {
		return false
	}
	for n != nil {
		if n == g {
			return true
		}
		n = n.Parent
	}
	return false
}

// IsDescendantOrSelf is Covers with the argument order of ancestor checks.
func (h *Hierarchy) IsDescendantOrSelf(value, ancestor string) bool {
	return h.Covers(ancestor, value)
}

// Validate checks structural invariants: unique values, single root,
// consistent parent/child links, and positive leaf counts.
func (h *Hierarchy) Validate() error {
	if h.Root == nil {
		return fmt.Errorf("hierarchy %s: nil root", h.Attr)
	}
	if h.Root.Parent != nil {
		return fmt.Errorf("hierarchy %s: root has a parent", h.Attr)
	}
	seen := make(map[string]bool)
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if seen[n.Value] {
			return fmt.Errorf("hierarchy %s: duplicate value %q", h.Attr, n.Value)
		}
		seen[n.Value] = true
		if h.nodes[n.Value] != n {
			return fmt.Errorf("hierarchy %s: node index out of sync for %q", h.Attr, n.Value)
		}
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("hierarchy %s: broken parent link at %q", h.Attr, c.Value)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(h.Root); err != nil {
		return err
	}
	if len(seen) != len(h.nodes) {
		return fmt.Errorf("hierarchy %s: index has %d values, tree has %d", h.Attr, len(h.nodes), len(seen))
	}
	return nil
}

// Builder assembles a hierarchy from parent/child edges.
type Builder struct {
	attr  string
	nodes map[string]*Node
	err   error
}

// NewBuilder starts a builder for the named attribute.
func NewBuilder(attr string) *Builder {
	return &Builder{attr: attr, nodes: make(map[string]*Node)}
}

func (b *Builder) node(value string) *Node {
	n := b.nodes[value]
	if n == nil {
		n = &Node{Value: value}
		b.nodes[value] = n
	}
	return n
}

// Add records that child generalizes to parent. The first error sticks and
// is reported by Build.
func (b *Builder) Add(parent, child string) *Builder {
	if b.err != nil {
		return b
	}
	if parent == "" || child == "" {
		b.err = fmt.Errorf("hierarchy %s: empty value in edge %q -> %q", b.attr, child, parent)
		return b
	}
	if parent == child {
		b.err = fmt.Errorf("hierarchy %s: self-edge at %q", b.attr, parent)
		return b
	}
	p, c := b.node(parent), b.node(child)
	if c.Parent != nil && c.Parent != p {
		b.err = fmt.Errorf("hierarchy %s: %q has two parents (%q and %q)", b.attr, child, c.Parent.Value, parent)
		return b
	}
	if c.Parent == p {
		return b
	}
	c.Parent = p
	p.Children = append(p.Children, c)
	return b
}

// Build finalizes the hierarchy, checking that the edges form one rooted
// tree with no cycles.
func (b *Builder) Build() (*Hierarchy, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("hierarchy %s: no nodes", b.attr)
	}
	var roots []*Node
	for _, n := range b.nodes {
		if n.Parent == nil {
			roots = append(roots, n)
		}
	}
	if len(roots) != 1 {
		names := make([]string, 0, len(roots))
		for _, r := range roots {
			names = append(names, r.Value)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("hierarchy %s: want exactly one root, found %d %v", b.attr, len(roots), names)
	}
	// Cycle check: every node must reach the root.
	for _, n := range b.nodes {
		slow, fast := n, n
		for fast != nil && fast.Parent != nil {
			slow, fast = slow.Parent, fast.Parent.Parent
			if slow == fast {
				return nil, fmt.Errorf("hierarchy %s: cycle involving %q", b.attr, n.Value)
			}
		}
	}
	h := &Hierarchy{Attr: b.attr, Root: roots[0], nodes: b.nodes}
	h.finalize()
	return h, nil
}
