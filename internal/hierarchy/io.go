package hierarchy

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// Path-style CSV serialization: every row is the generalization path of one
// leaf, from the leaf up to the root, e.g.
//
//	25,[20-29],[0-49],Any
//	31,[30-39],[0-49],Any
//
// Rows may have different lengths (unbalanced hierarchies). This is the
// format SECRETA's Configuration Editor loads from files.

// ReadCSV parses a path-style hierarchy file for the named attribute.
func ReadCSV(attr string, r io.Reader) (*Hierarchy, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("hierarchy %s: reading CSV: %w", attr, err)
	}
	b := NewBuilder(attr)
	n := 0
	for _, row := range rows {
		if len(row) == 0 || (len(row) == 1 && row[0] == "") {
			continue
		}
		n++
		if len(row) == 1 {
			return nil, fmt.Errorf("hierarchy %s: path row %q has a single value; need leaf and at least the root", attr, row[0])
		}
		for i := 0; i+1 < len(row); i++ {
			b.Add(row[i+1], row[i])
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("hierarchy %s: empty hierarchy file", attr)
	}
	return b.Build()
}

// WriteCSV serializes the hierarchy in path-style CSV, one row per leaf.
func (h *Hierarchy) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	var walk func(n *Node, path []string) error
	walk = func(n *Node, path []string) error {
		path = append(path, n.Value)
		if n.IsLeaf() {
			row := make([]string, len(path))
			for i := range path {
				row[i] = path[len(path)-1-i]
			}
			return cw.Write(row)
		}
		for _, c := range n.Children {
			if err := walk(c, path); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(h.Root, nil); err != nil {
		return fmt.Errorf("hierarchy %s: writing CSV: %w", h.Attr, err)
	}
	cw.Flush()
	return cw.Error()
}

// LoadFile reads a path-style hierarchy CSV from disk.
func LoadFile(attr, path string) (*Hierarchy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(attr, f)
}

// SaveFile writes the hierarchy to disk in path-style CSV.
func (h *Hierarchy) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := h.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
