package hierarchy

import "fmt"

// IndexedCut is the dense-ID mirror of a Cut: mapping a node through the
// cut is one array read, the NCP numerator is maintained incrementally
// (and matches Cut.NCP bit for bit), and generalizing is a contiguous
// range fill over the parent's preorder ID range. Apriori-style repair
// loops mutate an IndexedCut and write the final antichain back to the
// caller's Cut with ApplyTo.
type IndexedCut struct {
	ix *Index
	// on marks the IDs currently on the cut.
	on []bool
	// anc[id] is the cut node covering id (id itself for nodes strictly
	// above the cut, mirroring Cut.Map's pass-through).
	anc []int32
	// num is the running NCP numerator: sum of (leaves-1)*leaves over the
	// cut's nodes, the exact integer Cut.NCP divides once at the end.
	num int64
}

// NewIndexedCut builds the dense mirror of cut over the hierarchy's index.
func NewIndexedCut(ix *Index, cut *Cut) *IndexedCut {
	n := ix.Len()
	c := &IndexedCut{ix: ix, on: make([]bool, n), anc: make([]int32, n)}
	// One preorder sweep: a cut node's subtree is a contiguous ID range,
	// and the ranges of distinct cut nodes are disjoint, so a running
	// "current covering range" resolves every node.
	covering, end := int32(-1), int32(0)
	for id := int32(0); id < int32(n); id++ {
		if covering >= 0 && id < end {
			c.anc[id] = covering
			continue
		}
		if cut.in[ix.nodes[id]] {
			c.on[id] = true
			c.num += ix.NCPNum(id)
			covering, end = id, id+ix.size[id]
			c.anc[id] = id
			continue
		}
		// Strictly above the cut: maps to itself.
		c.anc[id] = id
	}
	return c
}

// Index returns the underlying hierarchy index.
func (c *IndexedCut) Index() *Index { return c.ix }

// Map returns the cut node covering id (id itself above the cut) — O(1).
func (c *IndexedCut) Map(id int32) int32 { return c.anc[id] }

// On reports whether id is on the cut.
func (c *IndexedCut) On(id int32) bool { return c.on[id] }

// NCPNumerator returns the running integer numerator of the cut's NCP.
func (c *IndexedCut) NCPNumerator() int64 { return c.num }

// NCP returns the cut's weighted average NCP, computed with exactly the
// operations of Cut.NCP so tie-breaks on NCP deltas agree to the last bit.
func (c *IndexedCut) NCP() float64 {
	total := int(c.ix.numLeaves)
	if total <= 1 {
		return 0
	}
	return float64(c.num) / (float64(total-1) * float64(total))
}

// GeneralizeDeltaNum returns the change the cut's NCP numerator would see
// from generalizing id to its parent, without mutating the cut. ok is
// false when id is not on the cut or is the root — the cases Cut.Generalize
// rejects.
func (c *IndexedCut) GeneralizeDeltaNum(id int32) (delta int64, ok bool) {
	if id < 0 || !c.on[id] {
		return 0, false
	}
	p := c.ix.par[id]
	if p < 0 {
		return 0, false
	}
	delta = c.ix.NCPNum(p)
	for j, end := p, p+c.ix.size[p]; j < end; j++ {
		if c.on[j] {
			delta -= c.ix.NCPNum(j)
		}
	}
	return delta, true
}

// Generalize replaces every cut node under id's parent with the parent (a
// range fill over the parent's subtree IDs) and returns the parent's ID.
func (c *IndexedCut) Generalize(id int32) (int32, error) {
	if id < 0 || !c.on[id] {
		return -1, fmt.Errorf("hierarchy %s: %q is not on the cut", c.ix.h.Attr, c.ix.Value(id))
	}
	p := c.ix.par[id]
	if p < 0 {
		return -1, fmt.Errorf("hierarchy %s: cannot generalize the root", c.ix.h.Attr)
	}
	for j, end := p, p+c.ix.size[p]; j < end; j++ {
		if c.on[j] {
			c.num -= c.ix.NCPNum(j)
			c.on[j] = false
		}
		c.anc[j] = p
	}
	c.on[p] = true
	c.num += c.ix.NCPNum(p)
	return p, nil
}

// ApplyTo rewrites cut's antichain to match this indexed cut, preserving
// the caller-visible Cut identity (VPA evolves one Cut across several
// repair passes).
func (c *IndexedCut) ApplyTo(cut *Cut) {
	cut.in = make(map[*Node]bool)
	for id, on := range c.on {
		if on {
			cut.in[c.ix.nodes[id]] = true
		}
	}
}
