package hierarchy

import (
	"fmt"
	"sort"
)

// Cut is an antichain through a hierarchy that covers every leaf exactly
// once: the state of subtree-style generalization schemes. Top-down
// specialization starts from the root cut and refines it; bottom-up
// generalization starts from the leaf cut and coarsens it; the Apriori
// transaction algorithm moves a cut over the item hierarchy.
type Cut struct {
	h *Hierarchy
	// in marks the nodes currently on the cut.
	in map[*Node]bool
}

// NewCut returns the most general cut: just the root.
func NewCut(h *Hierarchy) *Cut {
	return &Cut{h: h, in: map[*Node]bool{h.Root: true}}
}

// NewLeafCut returns the most specific cut: all leaves.
func NewLeafCut(h *Hierarchy) *Cut {
	c := &Cut{h: h, in: make(map[*Node]bool)}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			c.in[n] = true
			return
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(h.Root)
	return c
}

// Hierarchy returns the hierarchy the cut runs through.
func (c *Cut) Hierarchy() *Hierarchy { return c.h }

// Clone copies the cut.
func (c *Cut) Clone() *Cut {
	in := make(map[*Node]bool, len(c.in))
	for n := range c.in {
		in[n] = true
	}
	return &Cut{h: c.h, in: in}
}

// Contains reports whether the node for value is on the cut.
func (c *Cut) Contains(value string) bool {
	n := c.h.Node(value)
	return n != nil && c.in[n]
}

// Nodes returns the cut's nodes sorted by value for deterministic output.
func (c *Cut) Nodes() []*Node {
	out := make([]*Node, 0, len(c.in))
	for n := range c.in {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// Values returns the cut's values, sorted.
func (c *Cut) Values() []string {
	ns := c.Nodes()
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = n.Value
	}
	return out
}

// Map returns the cut value covering the given original value: the unique
// cut ancestor (or the value itself when it is on the cut).
func (c *Cut) Map(value string) (string, error) {
	n := c.h.Node(value)
	if n == nil {
		return "", fmt.Errorf("hierarchy %s: unknown value %q", c.h.Attr, value)
	}
	for m := n; m != nil; m = m.Parent {
		if c.in[m] {
			return m.Value, nil
		}
	}
	// The value sits strictly above the cut (already more general than the
	// cut allows); map it to itself.
	return n.Value, nil
}

// Specialize replaces a cut node with its children (top-down refinement).
// Leaf nodes cannot be specialized.
func (c *Cut) Specialize(value string) error {
	n := c.h.Node(value)
	if n == nil {
		return fmt.Errorf("hierarchy %s: unknown value %q", c.h.Attr, value)
	}
	if !c.in[n] {
		return fmt.Errorf("hierarchy %s: %q is not on the cut", c.h.Attr, value)
	}
	if n.IsLeaf() {
		return fmt.Errorf("hierarchy %s: cannot specialize leaf %q", c.h.Attr, value)
	}
	delete(c.in, n)
	for _, ch := range n.Children {
		c.in[ch] = true
	}
	return nil
}

// Generalize replaces a cut node and all its cut siblings (every cut node
// under the parent) with the parent (bottom-up coarsening). It requires all
// of the parent's leaf coverage to come from cut nodes, which holds for any
// valid cut.
func (c *Cut) Generalize(value string) error {
	n := c.h.Node(value)
	if n == nil {
		return fmt.Errorf("hierarchy %s: unknown value %q", c.h.Attr, value)
	}
	if !c.in[n] {
		return fmt.Errorf("hierarchy %s: %q is not on the cut", c.h.Attr, value)
	}
	p := n.Parent
	if p == nil {
		return fmt.Errorf("hierarchy %s: cannot generalize the root", c.h.Attr)
	}
	// Remove every cut node in p's subtree, then add p.
	var sweep func(m *Node)
	sweep = func(m *Node) {
		if c.in[m] {
			delete(c.in, m)
			return
		}
		for _, ch := range m.Children {
			sweep(ch)
		}
	}
	sweep(p)
	c.in[p] = true
	return nil
}

// Validate checks the antichain property: every leaf has exactly one cut
// ancestor (counting itself).
func (c *Cut) Validate() error {
	var walk func(n *Node, covered int) error
	walk = func(n *Node, covered int) error {
		if c.in[n] {
			covered++
		}
		if n.IsLeaf() {
			if covered != 1 {
				return fmt.Errorf("hierarchy %s: leaf %q covered %d times by cut", c.h.Attr, n.Value, covered)
			}
			return nil
		}
		for _, ch := range n.Children {
			if err := walk(ch, covered); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(c.h.Root, 0)
}

// NCP returns the average NCP of the cut's nodes weighted by the number of
// leaves each covers — the information loss of publishing at this cut,
// assuming uniform leaf frequencies. Per node that is NCP(n)*leaves(n) =
// (leaves-1)/(total-1) * leaves; the numerators are summed as integers so
// the result is independent of map iteration order — algorithms that
// tie-break on NCP deltas (Apriori's repair choice) must see identical
// low-order bits on every run for the whole pipeline to be deterministic.
// Division happens once at the end, keeping the walk O(n) with no
// allocation (this runs inside Apriori's per-candidate trial loop).
func (c *Cut) NCP() float64 {
	total := c.h.Root.leafCount
	if total <= 1 {
		return 0
	}
	var sum int64
	for n := range c.in {
		sum += int64(n.leafCount-1) * int64(n.leafCount)
	}
	return float64(sum) / (float64(total-1) * float64(total))
}
