package hierarchy

import (
	"fmt"
	"sync/atomic"
)

// Index is a one-time acceleration structure over a Hierarchy: nodes get
// dense int32 IDs in preorder (so every subtree is the contiguous ID range
// [id, id+SubtreeSize(id))), leaves get Euler-tour ordinals (so the leaf
// set of a subtree is the contiguous range [LeafLo, LeafHi)), and
// parent/depth/ancestor lookups become array reads. Algorithm hot loops —
// cut mapping, subtree NCP, violation repair — run on these IDs; the
// string values survive only at the edges.
//
// An Index is immutable once built and safe for concurrent use. Editing
// the hierarchy (AddLeaf, Rename, ...) invalidates it: Hierarchy.Index
// rebuilds on the next call.
type Index struct {
	h     *Hierarchy
	nodes []*Node          // ID -> node, preorder
	id    map[string]int32 // value -> ID
	par   []int32          // ID -> parent ID (-1 for the root)
	depth []int32          // ID -> distance from root
	size  []int32          // ID -> subtree size in nodes
	lo    []int32          // ID -> first leaf ordinal of the subtree
	hi    []int32          // ID -> one past the last leaf ordinal
	// atDepth[d] lists, for every node of depth >= d, its ancestor at
	// depth d — the ancestor-at-level table full-domain recoding levels
	// resolve through. atDepth[d][id] is -1 when depth(id) < d.
	atDepth   [][]int32
	leafIDs   []int32 // leaf ordinal -> node ID
	numLeaves int32
}

// Index returns the hierarchy's acceleration index, building it on first
// use. The index is cached; structural edits invalidate the cache.
func (h *Hierarchy) Index() *Index {
	if ix := h.index.Load(); ix != nil {
		return ix
	}
	ix := buildIndex(h)
	// A concurrent builder may have raced us; either result is equivalent.
	h.index.CompareAndSwap(nil, ix)
	return h.index.Load()
}

// invalidateIndex drops the cached index after a structural edit.
func (h *Hierarchy) invalidateIndex() { h.index.Store(nil) }

func buildIndex(h *Hierarchy) *Index {
	n := len(h.nodes)
	ix := &Index{
		h:     h,
		nodes: make([]*Node, 0, n),
		id:    make(map[string]int32, n),
		par:   make([]int32, 0, n),
		depth: make([]int32, 0, n),
		size:  make([]int32, n),
		lo:    make([]int32, n),
		hi:    make([]int32, n),
	}
	var walk func(nd *Node, parent int32) int32
	walk = func(nd *Node, parent int32) int32 {
		id := int32(len(ix.nodes))
		ix.nodes = append(ix.nodes, nd)
		ix.id[nd.Value] = id
		ix.par = append(ix.par, parent)
		d := int32(0)
		if parent >= 0 {
			d = ix.depth[parent] + 1
		}
		ix.depth = append(ix.depth, d)
		ix.lo[id] = ix.numLeaves
		if nd.IsLeaf() {
			ix.leafIDs = append(ix.leafIDs, id)
			ix.numLeaves++
		}
		for _, c := range nd.Children {
			walk(c, id)
		}
		ix.hi[id] = ix.numLeaves
		ix.size[id] = int32(len(ix.nodes)) - id
		return id
	}
	walk(h.Root, -1)
	// Ancestor-at-depth tables, one level at a time: the ancestor of id at
	// depth d is the ancestor of its parent at depth d (or id itself when
	// depth(id) == d).
	maxDepth := int32(0)
	for _, d := range ix.depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	ix.atDepth = make([][]int32, maxDepth+1)
	for d := int32(0); d <= maxDepth; d++ {
		// Preorder IDs put every parent before its children, so within one
		// row the parent's entry is already filled when the child needs it
		// (depth(id) > d implies depth(parent) >= d).
		row := make([]int32, len(ix.nodes))
		for id := range row {
			switch {
			case ix.depth[id] == d:
				row[id] = int32(id)
			case ix.depth[id] > d:
				row[id] = row[ix.par[id]]
			default:
				row[id] = -1
			}
		}
		ix.atDepth[d] = row
	}
	return ix
}

// Len returns the number of nodes (the ID space).
func (ix *Index) Len() int { return len(ix.nodes) }

// NumLeaves returns the number of leaves (the leaf-ordinal space).
func (ix *Index) NumLeaves() int { return int(ix.numLeaves) }

// ID resolves a value to its dense node ID.
func (ix *Index) ID(value string) (int32, bool) {
	id, ok := ix.id[value]
	return id, ok
}

// MustID resolves a value, with an error for unknown values carrying the
// hierarchy's attribute name (matching the string API's error shape).
func (ix *Index) MustID(value string) (int32, error) {
	id, ok := ix.id[value]
	if !ok {
		return 0, fmt.Errorf("hierarchy %s: unknown value %q", ix.h.Attr, value)
	}
	return id, nil
}

// Node returns the tree node behind an ID.
func (ix *Index) Node(id int32) *Node { return ix.nodes[id] }

// Value returns the string value behind an ID.
func (ix *Index) Value(id int32) string { return ix.nodes[id].Value }

// Parent returns the parent ID (-1 for the root).
func (ix *Index) Parent(id int32) int32 { return ix.par[id] }

// Depth returns the node's distance from the root.
func (ix *Index) Depth(id int32) int32 { return ix.depth[id] }

// SubtreeSize returns the number of nodes in id's subtree (including id);
// the subtree occupies the ID range [id, id+SubtreeSize(id)).
func (ix *Index) SubtreeSize(id int32) int32 { return ix.size[id] }

// LeafRange returns the Euler-tour leaf-ordinal range [lo, hi) covered by
// id's subtree; hi-lo is the subtree's leaf count.
func (ix *Index) LeafRange(id int32) (lo, hi int32) { return ix.lo[id], ix.hi[id] }

// LeafCount returns the number of leaves under id, an O(1) array read.
func (ix *Index) LeafCount(id int32) int32 { return ix.hi[id] - ix.lo[id] }

// LeafID returns the node ID of the leaf with the given ordinal.
func (ix *Index) LeafID(ordinal int32) int32 { return ix.leafIDs[ordinal] }

// IsAncestorOrSelf reports whether a is b or one of b's ancestors — a
// constant-time range containment check.
func (ix *Index) IsAncestorOrSelf(a, b int32) bool {
	return a <= b && b < a+ix.size[a]
}

// AncestorAtDepth returns id's ancestor at the given depth (id itself when
// depth(id) == d), or -1 when id is shallower than d.
func (ix *Index) AncestorAtDepth(id int32, d int32) int32 {
	if d < 0 || int(d) >= len(ix.atDepth) {
		return -1
	}
	return ix.atDepth[d][id]
}

// GeneralizeLevels returns the ID of id's ancestor lvl steps up, capping
// at the root — the indexed counterpart of Hierarchy.GeneralizeLevels.
func (ix *Index) GeneralizeLevels(id int32, lvl int) int32 {
	d := ix.depth[id] - int32(lvl)
	if d < 0 {
		d = 0
	}
	return ix.atDepth[d][id]
}

// NCPNum returns the integer numerator contribution (leaves-1)*leaves of
// publishing id over its whole subtree; Cut.NCP sums exactly these, so
// indexed cuts can maintain the sum incrementally and still produce
// bit-identical floats.
func (ix *Index) NCPNum(id int32) int64 {
	lc := int64(ix.LeafCount(id))
	return (lc - 1) * lc
}

// NCP returns the Normalized Certainty Penalty of publishing id instead of
// a leaf — Hierarchy.NCP without the map lookup.
func (ix *Index) NCP(id int32) float64 {
	total := int(ix.numLeaves)
	if total <= 1 {
		return 0
	}
	return float64(ix.LeafCount(id)-1) / float64(total-1)
}

// indexCache is the atomic slot Hierarchy embeds; a separate named type
// keeps the zero value usable.
type indexCache = atomic.Pointer[Index]
