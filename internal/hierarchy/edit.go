package hierarchy

import "fmt"

// Editing operations backing the Configuration Editor's hierarchy pane
// ("fully browsable and editable"). All operations re-finalize depths and
// leaf counts, so the hierarchy stays consistent for concurrent readers
// created afterwards.

// AddLeaf attaches a new leaf under the named parent node.
func (h *Hierarchy) AddLeaf(parent, value string) error {
	if value == "" {
		return fmt.Errorf("hierarchy %s: empty value", h.Attr)
	}
	if h.nodes[value] != nil {
		return fmt.Errorf("hierarchy %s: value %q already exists", h.Attr, value)
	}
	p := h.nodes[parent]
	if p == nil {
		return fmt.Errorf("hierarchy %s: unknown parent %q", h.Attr, parent)
	}
	n := &Node{Value: value, Parent: p}
	p.Children = append(p.Children, n)
	h.nodes[value] = n
	h.finalize()
	return nil
}

// Rename changes a node's value in place; data referring to the old value
// must be rewritten by the caller (dataset.ReplaceValue / ReplaceItem).
func (h *Hierarchy) Rename(old, new string) error {
	if new == "" {
		return fmt.Errorf("hierarchy %s: empty value", h.Attr)
	}
	n := h.nodes[old]
	if n == nil {
		return fmt.Errorf("hierarchy %s: unknown value %q", h.Attr, old)
	}
	if h.nodes[new] != nil {
		return fmt.Errorf("hierarchy %s: value %q already exists", h.Attr, new)
	}
	delete(h.nodes, old)
	n.Value = new
	h.nodes[new] = n
	h.invalidateIndex()
	return nil
}

// RemoveLeaf deletes a leaf. Interior nodes cannot be removed directly
// (use CollapseNode), and the root cannot be removed. An interior node
// left childless by the removal becomes a leaf itself.
func (h *Hierarchy) RemoveLeaf(value string) error {
	n := h.nodes[value]
	if n == nil {
		return fmt.Errorf("hierarchy %s: unknown value %q", h.Attr, value)
	}
	if !n.IsLeaf() {
		return fmt.Errorf("hierarchy %s: %q is not a leaf", h.Attr, value)
	}
	if n.Parent == nil {
		return fmt.Errorf("hierarchy %s: cannot remove the root", h.Attr)
	}
	p := n.Parent
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	delete(h.nodes, value)
	h.finalize()
	return nil
}

// CollapseNode removes an interior node, reattaching its children to its
// parent — flattening one level of the hierarchy.
func (h *Hierarchy) CollapseNode(value string) error {
	n := h.nodes[value]
	if n == nil {
		return fmt.Errorf("hierarchy %s: unknown value %q", h.Attr, value)
	}
	if n.IsLeaf() {
		return fmt.Errorf("hierarchy %s: %q is a leaf; use RemoveLeaf", h.Attr, value)
	}
	if n.Parent == nil {
		return fmt.Errorf("hierarchy %s: cannot collapse the root", h.Attr)
	}
	p := n.Parent
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	for _, c := range n.Children {
		c.Parent = p
		p.Children = append(p.Children, c)
	}
	delete(h.nodes, value)
	h.finalize()
	return nil
}

// MoveSubtree detaches the subtree rooted at value and reattaches it under
// newParent. Moves that would create a cycle (newParent inside the
// subtree) or detach the root are rejected.
func (h *Hierarchy) MoveSubtree(value, newParent string) error {
	n := h.nodes[value]
	if n == nil {
		return fmt.Errorf("hierarchy %s: unknown value %q", h.Attr, value)
	}
	if n.Parent == nil {
		return fmt.Errorf("hierarchy %s: cannot move the root", h.Attr)
	}
	np := h.nodes[newParent]
	if np == nil {
		return fmt.Errorf("hierarchy %s: unknown parent %q", h.Attr, newParent)
	}
	for m := np; m != nil; m = m.Parent {
		if m == n {
			return fmt.Errorf("hierarchy %s: moving %q under %q would create a cycle", h.Attr, value, newParent)
		}
	}
	if np == n.Parent {
		return nil
	}
	p := n.Parent
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	n.Parent = np
	np.Children = append(np.Children, n)
	h.finalize()
	return nil
}
