package hierarchy

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// ageHierarchy builds:
//
//	Any
//	├── [20-29]: 25 27
//	└── [30-49]: 31 47
func ageHierarchy(t testing.TB) *Hierarchy {
	t.Helper()
	h, err := NewBuilder("Age").
		Add("Any", "[20-29]").
		Add("Any", "[30-49]").
		Add("[20-29]", "25").
		Add("[20-29]", "27").
		Add("[30-49]", "31").
		Add("[30-49]", "47").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBuilderBasics(t *testing.T) {
	h := ageHierarchy(t)
	if h.Height() != 2 {
		t.Errorf("Height = %d, want 2", h.Height())
	}
	if got := h.Leaves(); !reflect.DeepEqual(got, []string{"25", "27", "31", "47"}) {
		t.Errorf("Leaves = %v", got)
	}
	if h.Root.Value != "Any" || h.Root.LeafCount() != 4 {
		t.Errorf("root = %q leafCount %d", h.Root.Value, h.Root.LeafCount())
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("A").Build(); err == nil {
		t.Error("empty builder accepted")
	}
	if _, err := NewBuilder("A").Add("p", "c").Add("q", "c").Build(); err == nil {
		t.Error("two parents accepted")
	}
	if _, err := NewBuilder("A").Add("p", "p").Build(); err == nil {
		t.Error("self edge accepted")
	}
	if _, err := NewBuilder("A").Add("p", "c").Add("x", "y").Build(); err == nil {
		t.Error("forest accepted")
	}
	if _, err := NewBuilder("A").Add("", "c").Build(); err == nil {
		t.Error("empty value accepted")
	}
}

func TestGeneralizeLevels(t *testing.T) {
	h := ageHierarchy(t)
	for _, tc := range []struct {
		v    string
		lvl  int
		want string
	}{
		{"25", 0, "25"},
		{"25", 1, "[20-29]"},
		{"25", 2, "Any"},
		{"25", 9, "Any"},
		{"[30-49]", 1, "Any"},
	} {
		got, err := h.GeneralizeLevels(tc.v, tc.lvl)
		if err != nil || got != tc.want {
			t.Errorf("GeneralizeLevels(%q,%d) = %q,%v want %q", tc.v, tc.lvl, got, err, tc.want)
		}
	}
	if _, err := h.GeneralizeLevels("nope", 1); err == nil {
		t.Error("unknown value accepted")
	}
}

func TestLCA(t *testing.T) {
	h := ageHierarchy(t)
	for _, tc := range []struct{ a, b, want string }{
		{"25", "27", "[20-29]"},
		{"25", "31", "Any"},
		{"25", "25", "25"},
		{"25", "[20-29]", "[20-29]"},
		{"[20-29]", "[30-49]", "Any"},
	} {
		n, err := h.LCA(tc.a, tc.b)
		if err != nil || n.Value != tc.want {
			t.Errorf("LCA(%q,%q) = %v,%v want %q", tc.a, tc.b, n, err, tc.want)
		}
	}
	if _, err := h.LCA("25", "zz"); err == nil {
		t.Error("unknown value accepted")
	}
	n, err := h.LCASet([]string{"25", "27", "31"})
	if err != nil || n.Value != "Any" {
		t.Errorf("LCASet = %v,%v", n, err)
	}
	if _, err := h.LCASet(nil); err == nil {
		t.Error("empty LCASet accepted")
	}
}

func TestNCP(t *testing.T) {
	h := ageHierarchy(t)
	for _, tc := range []struct {
		v    string
		want float64
	}{{"25", 0}, {"[20-29]", 1.0 / 3}, {"Any", 1}} {
		got, err := h.NCP(tc.v)
		if err != nil || got != tc.want {
			t.Errorf("NCP(%q) = %v,%v want %v", tc.v, got, err, tc.want)
		}
	}
}

func TestCovers(t *testing.T) {
	h := ageHierarchy(t)
	if !h.Covers("Any", "25") || !h.Covers("[20-29]", "27") || !h.Covers("25", "25") {
		t.Error("Covers misses ancestors")
	}
	if h.Covers("25", "Any") || h.Covers("[20-29]", "31") {
		t.Error("Covers accepts non-ancestors")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	h := ageHierarchy(t)
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("Age", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Leaves(), h.Leaves()) {
		t.Errorf("leaves mismatch: %v vs %v", back.Leaves(), h.Leaves())
	}
	if back.Height() != h.Height() || back.Size() != h.Size() {
		t.Errorf("shape mismatch")
	}
	n, err := back.LCA("25", "27")
	if err != nil || n.Value != "[20-29]" {
		t.Errorf("LCA after round-trip = %v,%v", n, err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":      "",
		"single col": "25\n",
		"two roots":  "a,r1\nb,r2\n",
	} {
		if _, err := ReadCSV("A", strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAutoNumeric(t *testing.T) {
	vals := []string{"5", "1", "3", "2", "4", "5", ""}
	h, err := AutoNumeric("N", vals, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := h.Leaves(); !reflect.DeepEqual(got, []string{"1", "2", "3", "4", "5"}) {
		t.Errorf("leaves = %v", got)
	}
	// Root must cover the whole numeric range.
	if !strings.Contains(h.Root.Value, "1") || !strings.Contains(h.Root.Value, "5") {
		t.Errorf("root label = %q", h.Root.Value)
	}
	if _, err := AutoNumeric("N", []string{"x"}, 2); err == nil {
		t.Error("non-numeric accepted")
	}
	if _, err := AutoNumeric("N", nil, 2); err == nil {
		t.Error("empty accepted")
	}
}

func TestAutoCategorical(t *testing.T) {
	vals := []string{"delta", "alpha", "gamma", "beta", "alpha"}
	h, err := AutoCategorical("C", vals, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := h.Leaves(); !reflect.DeepEqual(got, []string{"alpha", "beta", "delta", "gamma"}) {
		t.Errorf("leaves = %v", got)
	}
}

func TestAutoBalancedShapes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 31, 100} {
		for _, fanout := range []int{2, 3, 5} {
			vals := make([]string, n)
			for i := range vals {
				vals[i] = fmt.Sprintf("v%03d", i)
			}
			h, err := AutoCategorical("C", vals, fanout)
			if err != nil {
				t.Fatalf("n=%d fanout=%d: %v", n, fanout, err)
			}
			if err := h.Validate(); err != nil {
				t.Fatalf("n=%d fanout=%d: %v", n, fanout, err)
			}
			if len(h.Leaves()) != n {
				t.Fatalf("n=%d fanout=%d: %d leaves", n, fanout, len(h.Leaves()))
			}
			if h.Root.LeafCount() != n {
				t.Fatalf("n=%d fanout=%d: root covers %d", n, fanout, h.Root.LeafCount())
			}
		}
	}
}

func TestCutLifecycle(t *testing.T) {
	h := ageHierarchy(t)
	c := NewCut(h)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Map("25"); got != "Any" {
		t.Errorf("root cut Map = %q", got)
	}
	if c.NCP() != 1 {
		t.Errorf("root cut NCP = %v", c.NCP())
	}
	if err := c.Specialize("Any"); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Map("25"); got != "[20-29]" {
		t.Errorf("after specialize Map = %q", got)
	}
	if err := c.Specialize("[20-29]"); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Map("25"); got != "25" {
		t.Errorf("leaf-level Map = %q", got)
	}
	if err := c.Specialize("25"); err == nil {
		t.Error("specializing a leaf accepted")
	}
	// Now generalize back up.
	if err := c.Generalize("25"); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Map("27"); got != "[20-29]" {
		t.Errorf("after generalize Map = %q", got)
	}
	if err := c.Generalize("[20-29]"); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Map("47"); got != "Any" {
		t.Errorf("after full generalize Map = %q", got)
	}
	if err := c.Generalize("Any"); err == nil {
		t.Error("generalizing the root accepted")
	}
}

func TestCutLeafCutAndClone(t *testing.T) {
	h := ageHierarchy(t)
	c := NewLeafCut(h)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NCP() != 0 {
		t.Errorf("leaf cut NCP = %v", c.NCP())
	}
	cp := c.Clone()
	if err := cp.Generalize("25"); err != nil {
		t.Fatal(err)
	}
	if !c.Contains("25") {
		t.Error("Clone shares state with original")
	}
	if got := cp.Values(); len(got) != 3 {
		t.Errorf("clone cut values = %v", got)
	}
}

func TestCutMapAboveCut(t *testing.T) {
	h := ageHierarchy(t)
	c := NewLeafCut(h)
	// "[20-29]" is strictly above the leaf cut; Map returns it unchanged.
	if got, err := c.Map("[20-29]"); err != nil || got != "[20-29]" {
		t.Errorf("Map above cut = %q, %v", got, err)
	}
}

// Property: for random hierarchies, any sequence of valid specializations
// keeps the cut valid, and Map is consistent with Covers.
func TestCutSpecializeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		vals := make([]string, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("v%02d", i)
		}
		h, err := AutoCategorical("C", vals, 2+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		c := NewCut(h)
		for steps := 0; steps < 50; steps++ {
			nodes := c.Nodes()
			var interior []*Node
			for _, nd := range nodes {
				if !nd.IsLeaf() {
					interior = append(interior, nd)
				}
			}
			if len(interior) == 0 {
				break
			}
			pick := interior[rng.Intn(len(interior))]
			if err := c.Specialize(pick.Value); err != nil {
				t.Fatal(err)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		for _, leaf := range h.Leaves() {
			m, err := c.Map(leaf)
			if err != nil {
				t.Fatal(err)
			}
			if !h.Covers(m, leaf) {
				t.Fatalf("Map(%q)=%q does not cover", leaf, m)
			}
		}
	}
}

// Property: LCA is commutative, idempotent, and its result covers both
// arguments.
func TestLCAProperty(t *testing.T) {
	vals := make([]string, 40)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%02d", i)
	}
	h, err := AutoCategorical("C", vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	leaves := h.Leaves()
	for i := 0; i < 200; i++ {
		a := leaves[rng.Intn(len(leaves))]
		b := leaves[rng.Intn(len(leaves))]
		ab, err1 := h.LCA(a, b)
		ba, err2 := h.LCA(b, a)
		if err1 != nil || err2 != nil || ab != ba {
			t.Fatalf("LCA not commutative at (%q,%q)", a, b)
		}
		if !h.Covers(ab.Value, a) || !h.Covers(ab.Value, b) {
			t.Fatalf("LCA(%q,%q)=%q does not cover both", a, b, ab.Value)
		}
		self, _ := h.LCA(a, a)
		if self.Value != a {
			t.Fatalf("LCA(%q,%q) != self", a, a)
		}
	}
}
