package hierarchy

import (
	"fmt"
	"testing"
)

func benchHierarchy(b *testing.B, n, fanout int) *Hierarchy {
	b.Helper()
	vals := make([]string, n)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%05d", i)
	}
	h, err := AutoCategorical("B", vals, fanout)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func BenchmarkLCA(b *testing.B) {
	h := benchHierarchy(b, 1024, 4)
	leaves := h.Leaves()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := leaves[i%len(leaves)]
		c := leaves[(i*7+13)%len(leaves)]
		if _, err := h.LCA(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneralizeLevels(b *testing.B) {
	h := benchHierarchy(b, 1024, 4)
	leaves := h.Leaves()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.GeneralizeLevels(leaves[i%len(leaves)], 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAutoCategorical(b *testing.B) {
	vals := make([]string, 2048)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%05d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AutoCategorical("B", vals, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCutMap(b *testing.B) {
	h := benchHierarchy(b, 1024, 4)
	c := NewCut(h)
	if err := c.Specialize(h.Root.Value); err != nil {
		b.Fatal(err)
	}
	leaves := h.Leaves()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Map(leaves[i%len(leaves)]); err != nil {
			b.Fatal(err)
		}
	}
}
