// End-to-end integration tests: the full pipeline a SECRETA user walks
// through — generate data, derive hierarchies and workloads, persist
// everything to disk, reload, anonymize through the engine, evaluate,
// compare, and export — crossing every module boundary in one flow.
package secreta

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/engine"
	"secreta/internal/experiment"
	"secreta/internal/export"
	"secreta/internal/gen"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/policy"
	"secreta/internal/privacy"
	"secreta/internal/query"
	"secreta/internal/rt"
)

func TestFullPipelineThroughDisk(t *testing.T) {
	dir := t.TempDir()

	// 1. Generate and persist the dataset (CSV and JSON).
	orig := gen.Census(gen.Config{Records: 180, Items: 16, Seed: 77})
	csvPath := filepath.Join(dir, "data.csv")
	if err := orig.SaveFile(csvPath, dataset.Options{}); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "data.json")
	if err := orig.SaveJSONFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.LoadFile(csvPath, dataset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dsJSON, err := dataset.LoadJSONFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != orig.Len() || dsJSON.Len() != orig.Len() {
		t.Fatal("reloaded datasets lost records")
	}

	// 2. Derive hierarchies, persist, reload.
	hs, err := gen.Hierarchies(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := make(generalize.Set)
	for name, h := range hs {
		p := filepath.Join(dir, name+".csv")
		if err := h.SaveFile(p); err != nil {
			t.Fatal(err)
		}
		back, err := hierarchy.LoadFile(name, p)
		if err != nil {
			t.Fatal(err)
		}
		reloaded[name] = back
	}
	ih, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	ihPath := filepath.Join(dir, "items.csv")
	if err := ih.SaveFile(ihPath); err != nil {
		t.Fatal(err)
	}
	ih, err = hierarchy.LoadFile(ds.TransName, ihPath)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Generate and persist a workload; reload it.
	w, err := query.Generate(ds, query.GenOptions{Queries: 25, Dims: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wPath := filepath.Join(dir, "workload.txt")
	if err := w.SaveFile(wPath); err != nil {
		t.Fatal(err)
	}
	w, err = query.LoadFile(wPath)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Policies: generate, persist, reload.
	pol := &policy.Policy{
		Privacy: policy.PrivacyFrequent(ds, 2, 2),
		Utility: policy.UtilityFromHierarchy(ih, 1),
	}
	pp := filepath.Join(dir, "privacy.txt")
	pf, err := os.Create(pp)
	if err != nil {
		t.Fatal(err)
	}
	if err := policy.WritePrivacy(pf, pol.Privacy); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	if pol.Privacy, err = policy.LoadPrivacyFile(pp); err != nil {
		t.Fatal(err)
	}

	// 5. Evaluation mode over the reloaded artifacts.
	cfg := engine.Config{
		Mode: engine.RT, RelAlgo: "cluster", TransAlgo: "apriori", Flavor: rt.RMerge,
		K: 5, M: 2, Delta: 0.2,
		Hierarchies: reloaded, ItemHierarchy: ih, Workload: w,
	}
	res := engine.Run(ds, cfg)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	qis, err := ds.QIIndices(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep := privacy.CheckRT(res.Anonymized, qis, 5, 2); !rep.Holds() {
		t.Fatalf("pipeline output violates privacy: %+v", rep)
	}
	if res.Indicators.ARE < 0 {
		t.Fatalf("ARE = %v", res.Indicators.ARE)
	}

	// 6. Persist the anonymized dataset and verify it reloads as
	// (k,k^m)-anonymous: the export is faithful.
	anonPath := filepath.Join(dir, "anon.csv")
	if err := res.Anonymized.SaveFile(anonPath, dataset.Options{}); err != nil {
		t.Fatal(err)
	}
	anon, err := dataset.LoadFile(anonPath, dataset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := privacy.CheckRT(anon, qis, 5, 2); !rep.Holds() {
		t.Fatalf("reloaded anonymized dataset violates privacy: %+v", rep)
	}

	// 7. Comparison mode + series export.
	series, err := experiment.Compare(ds, []engine.Config{cfg}, experiment.Sweep{
		Param: "k", Start: 3, End: 7, Step: 2,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	seriesPath := filepath.Join(dir, "series.csv")
	if err := export.SeriesCSVFile(seriesPath, series); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(seriesPath)
	if err != nil {
		t.Fatal(err)
	}
	if rows := strings.Count(string(b), "\n"); rows != 4 { // header + 3 points
		t.Fatalf("series CSV rows = %d", rows)
	}
	resultsPath := filepath.Join(dir, "results.json")
	if err := export.ResultsJSONFile(resultsPath, []*engine.Result{res}); err != nil {
		t.Fatal(err)
	}
}

// TestExtensionRhoThroughEngine runs the rho-uncertainty extension through
// the engine facade, end to end.
func TestExtensionRhoThroughEngine(t *testing.T) {
	ds := gen.Census(gen.Config{Records: 200, Items: 14, Seed: 83})
	h := ds.ItemHistogram()
	sens := []string{h[0].Value, h[1].Value}
	res := engine.Run(ds, engine.Config{
		Mode: engine.Transactional, Algorithm: "rho",
		K: 1, M: 2, Rho: 0.4, Sensitive: sens,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Anonymized.Len() != ds.Len() {
		t.Fatal("record count changed")
	}
}

// TestUtilityCrossoverClusterVsIncognito pins the headline comparison shape
// at pipeline level: at low-to-moderate k (relative to n), local recoding
// preserves at least as much utility as full-domain recoding. At k near
// n/8 and beyond the greedy clusters degrade and the ordering can flip,
// which is why the check stops at k=10 for n=240.
func TestUtilityCrossoverClusterVsIncognito(t *testing.T) {
	ds := gen.Census(gen.Config{Records: 240, Items: 0, Seed: 91})
	hs, err := gen.Hierarchies(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 5, 10} {
		var gcp [2]float64
		for i, algo := range []string{"cluster", "incognito"} {
			res := engine.Run(ds, engine.Config{
				Mode: engine.Relational, Algorithm: algo, K: k, Hierarchies: hs,
			})
			if res.Err != nil {
				t.Fatalf("%s k=%d: %v", algo, k, res.Err)
			}
			gcp[i] = res.Indicators.GCP
		}
		if gcp[0] > gcp[1]+0.05 {
			t.Errorf("k=%d: cluster GCP %.4f worse than incognito %.4f", k, gcp[0], gcp[1])
		}
	}
}
