module secreta

go 1.24
