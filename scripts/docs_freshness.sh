#!/bin/sh
# docs_freshness.sh — fail when an HTTP route exported by internal/server
# is not documented in docs/API.md. Run from the repository root; CI runs
# it on every push so the endpoint reference cannot silently drift from
# the code.
set -eu

server_src="internal/server/server.go"
api_doc="docs/API.md"

# `|| true` keeps set -e from aborting on grep's no-match exit before the
# diagnostic below can fire.
routes=$(grep -oE 'HandleFunc\("[A-Z]+ [^"]+"' "$server_src" | sed -E 's/HandleFunc\("([A-Z]+) ([^"]+)"/\1 \2/' || true)
if [ -z "$routes" ]; then
    echo "docs_freshness: no routes found in $server_src (pattern drift?)" >&2
    exit 1
fi

missing=0
while IFS= read -r route; do
    method=${route%% *}
    path=${route#* }
    # A route is documented when its path literal appears in the API doc
    # (ServeMux {id} wildcards included, so the doc must spell the real
    # pattern, not a prose paraphrase).
    if ! grep -qF "$path" "$api_doc"; then
        echo "docs_freshness: $method $path is served but not mentioned in $api_doc" >&2
        missing=1
    fi
done <<EOF
$routes
EOF

if [ "$missing" -ne 0 ]; then
    echo "docs_freshness: update $api_doc to cover every route." >&2
    exit 1
fi
echo "docs_freshness: all $(printf '%s\n' "$routes" | wc -l | tr -d ' ') routes documented."
