#!/bin/sh
# docs_freshness.sh — fail when an HTTP route exported by internal/server
# is not documented in docs/API.md, or when a cmd/secreta-serve flag is
# missing from both docs/API.md and docs/OPERATIONS.md. Run from the
# repository root; CI runs it on every push so the endpoint and flag
# references cannot silently drift from the code.
set -eu

server_src="internal/server"
serve_main="cmd/secreta-serve/main.go"
api_doc="docs/API.md"
ops_doc="docs/OPERATIONS.md"

# Routes can be registered from any file in the server package (the
# dashboard ones live in dashboard.go), so scan them all, not just
# server.go. `|| true` keeps set -e from aborting on grep's no-match
# exit before the diagnostic below can fire.
routes=$(grep -hoE 'HandleFunc\("[A-Z]+ [^"]+"' "$server_src"/*.go | sed -E 's/HandleFunc\("([A-Z]+) ([^"]+)"/\1 \2/' | sort -u || true)
if [ -z "$routes" ]; then
    echo "docs_freshness: no routes found in $server_src/*.go (pattern drift?)" >&2
    exit 1
fi

missing=0
while IFS= read -r route; do
    method=${route%% *}
    path=${route#* }
    # A route is documented when its path literal appears in the API doc
    # (ServeMux {id} wildcards included, so the doc must spell the real
    # pattern, not a prose paraphrase).
    if ! grep -qF "$path" "$api_doc"; then
        echo "docs_freshness: $method $path is served but not mentioned in $api_doc" >&2
        missing=1
    fi
done <<EOF
$routes
EOF

if [ "$missing" -ne 0 ]; then
    echo "docs_freshness: update $api_doc to cover every route." >&2
    exit 1
fi
echo "docs_freshness: all $(printf '%s\n' "$routes" | wc -l | tr -d ' ') routes documented."

# Every operator flag of secreta-serve must appear (as `-name`) in the API
# reference or the operations runbook.
flags=$(grep -oE 'flag\.[A-Za-z0-9]+\("[a-z][a-z0-9-]*"' "$serve_main" | sed -E 's/.*\("([^"]+)"/\1/' | sort -u || true)
if [ -z "$flags" ]; then
    echo "docs_freshness: no flags found in $serve_main (pattern drift?)" >&2
    exit 1
fi
if [ ! -f "$ops_doc" ]; then
    echo "docs_freshness: $ops_doc is missing" >&2
    exit 1
fi

missing=0
for f in $flags; do
    # Require the backtick-quoted `-flag` form, so incidental hyphenated
    # prose cannot satisfy the gate for an undocumented flag.
    if ! grep -qF -- "\`-$f\`" "$api_doc" && ! grep -qF -- "\`-$f\`" "$ops_doc"; then
        echo "docs_freshness: secreta-serve flag -$f is not documented (want \`-$f\` in $api_doc or $ops_doc)" >&2
        missing=1
    fi
done

if [ "$missing" -ne 0 ]; then
    echo "docs_freshness: update $api_doc / $ops_doc to cover every secreta-serve flag." >&2
    exit 1
fi
echo "docs_freshness: all $(printf '%s\n' "$flags" | wc -l | tr -d ' ') secreta-serve flags documented."

# Every Prometheus metric family GET /metrics exposes must appear in the
# operations runbook's "Metrics & scraping" reference. Families are the
# literal first arguments of promWriter.start() in metrics.go.
metrics_src="internal/server/metrics.go"
families=$(grep -oE '\.start\("secreta_[a-z_]+"' "$metrics_src" | sed -E 's/.*"(secreta_[a-z_]+)"/\1/' | sort -u || true)
if [ -z "$families" ]; then
    echo "docs_freshness: no metric families found in $metrics_src (pattern drift?)" >&2
    exit 1
fi

missing=0
for fam in $families; do
    if ! grep -qF "$fam" "$ops_doc"; then
        echo "docs_freshness: metric family $fam is exported but not mentioned in $ops_doc" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "docs_freshness: update $ops_doc (Metrics & scraping) to cover every metric family." >&2
    exit 1
fi
echo "docs_freshness: all $(printf '%s\n' "$families" | wc -l | tr -d ' ') metric families documented."

# The fault/degraded-mode observability fields of GET /stats must stay in
# the runbook's "/stats field reference". These are the fields an operator
# reaches for during a disk incident, so they are pinned by name rather
# than trusting the table to keep up.
stats_fields="trim_errors io_retries degraded orphans_swept disk_transient"
missing=0
for field in $stats_fields; do
    if ! grep -qF "$field" "$ops_doc"; then
        echo "docs_freshness: /stats field $field is not mentioned in $ops_doc" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "docs_freshness: update $ops_doc (/stats field reference) to cover the fault-observability fields." >&2
    exit 1
fi
echo "docs_freshness: all fault-observability /stats fields documented."
