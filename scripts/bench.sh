#!/usr/bin/env bash
# scripts/bench.sh [n] — run the perf-tracking benchmark suite and emit
# BENCH_<n>.json with one record per benchmark: {name, ns_op, b_op,
# allocs_op}. The micro-benchmarks (Partition, KMViolations, CheckRT,
# Apriori) are the hot-path trackers; the root go test -bench suite
# (E1-E10) rides along at ROOT_BENCHTIME so end-to-end regressions are
# visible too.
#
#   scripts/bench.sh 0                  # record a baseline -> BENCH_0.json
#   BENCHTIME=5s scripts/bench.sh 1     # longer micro runs -> BENCH_1.json
#   SKIP_ROOT_BENCH=1 scripts/bench.sh  # micro-benchmarks only
#
# Compare two recordings with e.g.:
#   jq -s '.[0] as $a | .[1] | map(.name as $n | ($a[] | select(.name==$n)) as $base
#          | {name, speedup: ($base.ns_op/.ns_op), alloc_ratio: ($base.allocs_op/.allocs_op)})' \
#       BENCH_0.json BENCH_1.json
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-0}"
OUT="BENCH_${N}.json"
BENCHTIME="${BENCHTIME:-2s}"
ROOT_BENCHTIME="${ROOT_BENCHTIME:-1x}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkPartition$|BenchmarkKMViolationsM2$|BenchmarkCheckRT$|BenchmarkApriori$' \
	-benchmem -benchtime "$BENCHTIME" ./internal/privacy ./internal/transaction | tee "$RAW"
if [ "${SKIP_ROOT_BENCH:-}" != "1" ]; then
	go test -run '^$' -bench . -benchmem -benchtime "$ROOT_BENCHTIME" . | tee -a "$RAW"
fi

# Parse the raw `go test -bench` output into the flat JSON format with
# the tested Go parser (internal/harness via `secreta-bench parse`):
# package-qualified names, loud failure on duplicates, skips surfaced on
# stderr. The historical awk pipeline this replaces is gone — one parser,
# unit-tested, shared with `secreta-bench run`/`compare`.
go run ./cmd/secreta-bench parse -o "$OUT" <"$RAW"

echo "wrote $OUT"
