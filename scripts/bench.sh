#!/usr/bin/env bash
# scripts/bench.sh [n] — run the perf-tracking benchmark suite and emit
# BENCH_<n>.json with one record per benchmark: {name, ns_op, b_op,
# allocs_op}. The micro-benchmarks (Partition, KMViolations, CheckRT,
# Apriori) are the hot-path trackers; the root go test -bench suite
# (E1-E10) rides along at ROOT_BENCHTIME so end-to-end regressions are
# visible too.
#
#   scripts/bench.sh 0                  # record a baseline -> BENCH_0.json
#   BENCHTIME=5s scripts/bench.sh 1     # longer micro runs -> BENCH_1.json
#   SKIP_ROOT_BENCH=1 scripts/bench.sh  # micro-benchmarks only
#
# Compare two recordings with e.g.:
#   jq -s '.[0] as $a | .[1] | map(.name as $n | ($a[] | select(.name==$n)) as $base
#          | {name, speedup: ($base.ns_op/.ns_op), alloc_ratio: ($base.allocs_op/.allocs_op)})' \
#       BENCH_0.json BENCH_1.json
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-0}"
OUT="BENCH_${N}.json"
BENCHTIME="${BENCHTIME:-2s}"
ROOT_BENCHTIME="${ROOT_BENCHTIME:-1x}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkPartition$|BenchmarkKMViolationsM2$|BenchmarkCheckRT$|BenchmarkApriori$' \
	-benchmem -benchtime "$BENCHTIME" ./internal/privacy ./internal/transaction | tee "$RAW"
if [ "${SKIP_ROOT_BENCH:-}" != "1" ]; then
	go test -run '^$' -bench . -benchmem -benchtime "$ROOT_BENCHTIME" . | tee -a "$RAW"
fi

# Parse `go test -bench` lines into JSON. A line looks like:
#   BenchmarkPartition-8  100  11905132 ns/op  4477032 B/op  85333 allocs/op [extra metrics]
# Names are qualified with the package path from the preceding `pkg:` line
# so identically named benchmarks in different packages stay distinct
# records; a duplicate qualified name would make jq joins silently pick
# the wrong baseline, so the parse fails loudly instead of emitting it.
awk '
/^pkg:/ { pkg = $2 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (pkg != "") name = pkg "." name
	ns = bop = aop = ""
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bop = $i
		if ($(i+1) == "allocs/op") aop = $i
	}
	if (ns == "") next
	if (name in seen) {
		printf "bench.sh: duplicate benchmark name %s — output would be ambiguous\n", name > "/dev/stderr"
		bad = 1
		exit 1
	}
	seen[name] = 1
	if (out != "") out = out ",\n"
	out = out sprintf("  {\"name\": \"%s\", \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", \
		name, ns, (bop == "" ? "null" : bop), (aop == "" ? "null" : aop))
}
END {
	if (bad) exit 1
	printf "[\n%s\n]\n", out
}
' "$RAW" >"$OUT"

echo "wrote $OUT"
