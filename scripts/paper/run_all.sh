#!/usr/bin/env bash
# scripts/paper/run_all.sh — the reproducible experiment workflow: run the
# scripts/paper/experiments.json grid (hot-path micro benchmarks + the
# E1-E10 end-to-end suite, with warmup and repeats) into a timestamped
# run folder:
#
#   paper_runs/<ts>/csv/results.csv        one row per (repeat, benchmark)
#   paper_runs/<ts>/logs/<exp>_rep<k>.log  raw `go test -bench` output
#   paper_runs/<ts>/analysis/baseline.json machine-readable mean/std/CV
#   paper_runs/<ts>/analysis/summary.{csv,md}
#
# Extra arguments pass through to `secreta-bench run`, e.g.:
#
#   bash scripts/paper/run_all.sh -repeats 3 -benchtime 500ms
#   bash scripts/paper/run_all.sh -gate-only -label pr7-candidate
#
# Promote a run's analysis/baseline.json (or a flat BENCH_n.json from
# scripts/bench.sh) to the tracked baseline, and gate future changes with
# `secreta-bench compare -baseline <file>` (see docs/PERFORMANCE.md).
set -euo pipefail
cd "$(dirname "$0")/../.."
exec go run ./cmd/secreta-bench run -grid scripts/paper/experiments.json "$@"
