#!/bin/sh
# godoc_check.sh — fail when any internal/* package lacks a package-level
# doc comment (a `// Package <name> ...` block attached to its package
# clause). Run from the repository root; CI runs it on every push so a new
# package cannot land undocumented.
set -eu

missing=0
for dir in internal/*/; do
    pkg=$(basename "$dir")
    found=0
    for f in "$dir"*.go; do
        case "$f" in
            *_test.go) continue ;;
        esac
        [ -e "$f" ] || continue
        # The doc comment must be directly attached: a line starting
        # `// Package <name>` with only comment lines — no blanks, which
        # would detach the comment in godoc's eyes — between it and the
        # package clause. awk scans each file for that shape.
        if awk -v pkg="$pkg" '
            $0 ~ "^// Package "pkg"[ .,:]" || $0 == "// Package "pkg { indoc=1 }
            indoc && /^package / { ok=1; exit }
            indoc && !/^\/\// { indoc=0 }
            END { exit ok ? 0 : 1 }
        ' "$f"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "godoc_check: package $pkg has no package doc comment (want \`// Package $pkg ...\` in $dir)" >&2
        missing=1
    fi
done

if [ "$missing" -ne 0 ]; then
    echo "godoc_check: every internal package must state its role and key invariants in a package comment." >&2
    exit 1
fi
echo "godoc_check: all $(ls -d internal/*/ | wc -l | tr -d ' ') internal packages documented."
