// Tests over the hand-written sample data in testdata/: a miniature
// patient RT-dataset with curated hierarchies, workload, and COAT
// policies. These pin the file formats (they are documentation by example)
// and exercise the full stack on data a human can eyeball.
package secreta

import (
	"path/filepath"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/engine"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/policy"
	"secreta/internal/privacy"
	"secreta/internal/query"
	"secreta/internal/rt"
)

func loadTestdata(t *testing.T) (*dataset.Dataset, generalize.Set, *hierarchy.Hierarchy, *query.Workload) {
	t.Helper()
	ds, err := dataset.LoadFile(filepath.Join("testdata", "patients.csv"), dataset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs := make(generalize.Set)
	for _, name := range []string{"Age", "Gender", "Zip"} {
		h, err := hierarchy.LoadFile(name, filepath.Join("testdata", "hierarchies", name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		hs[name] = h
	}
	ih, err := hierarchy.LoadFile("Diagnoses", filepath.Join("testdata", "hierarchies", "Diagnoses.csv"))
	if err != nil {
		t.Fatal(err)
	}
	w, err := query.LoadFile(filepath.Join("testdata", "workload.txt"))
	if err != nil {
		t.Fatal(err)
	}
	return ds, hs, ih, w
}

func TestTestdataLoads(t *testing.T) {
	ds, hs, ih, w := loadTestdata(t)
	if ds.Len() != 20 {
		t.Errorf("patients = %d", ds.Len())
	}
	if ds.TransName != "Diagnoses" {
		t.Errorf("transaction attribute = %q", ds.TransName)
	}
	if w.Len() != 5 {
		t.Errorf("workload = %d queries", w.Len())
	}
	// Hierarchies must cover the data exactly.
	for i, a := range ds.Attrs {
		for _, v := range ds.Domain(i) {
			if !hs[a.Name].Contains(v) {
				t.Errorf("hierarchy %s misses %q", a.Name, v)
			}
		}
	}
	for _, it := range ds.ItemDomain() {
		if !ih.Contains(it) {
			t.Errorf("item hierarchy misses %q", it)
		}
	}
	if hs["Age"].Height() != 3 || ih.Height() != 2 {
		t.Errorf("heights: Age=%d Diagnoses=%d", hs["Age"].Height(), ih.Height())
	}
}

func TestTestdataRTAnonymization(t *testing.T) {
	ds, hs, ih, w := loadTestdata(t)
	res := engine.Run(ds, engine.Config{
		Mode: engine.RT, RelAlgo: "cluster", TransAlgo: "apriori", Flavor: rt.RMerge,
		K: 4, M: 2, Delta: 0.5,
		Hierarchies: hs, ItemHierarchy: ih, Workload: w,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	qis, err := ds.QIIndices(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep := privacy.CheckRT(res.Anonymized, qis, 4, 2); !rep.Holds() {
		t.Fatalf("privacy violated on sample data: %+v", rep)
	}
	if res.Indicators.ARE < 0 {
		t.Errorf("ARE = %v", res.Indicators.ARE)
	}
}

func TestTestdataCOATPolicies(t *testing.T) {
	ds, _, _, _ := loadTestdata(t)
	priv, err := policy.LoadPrivacyFile(filepath.Join("testdata", "privacy.txt"))
	if err != nil {
		t.Fatal(err)
	}
	util, err := policy.LoadUtilityFile(filepath.Join("testdata", "utility.txt"))
	if err != nil {
		t.Fatal(err)
	}
	pol := &policy.Policy{Privacy: priv, Utility: util}
	if err := pol.Validate(); err != nil {
		t.Fatal(err)
	}
	res := engine.Run(ds, engine.Config{
		Mode: engine.Transactional, Algorithm: "coat", K: 3,
		Policy: pol,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
}

func TestTestdataWorkloadExactCounts(t *testing.T) {
	ds, _, _, w := loadTestdata(t)
	// Hand-checked counts on the 20-patient file.
	want := []float64{3, 6, 5, 3, 6}
	for i := range w.Queries {
		got, err := w.Queries[i].CountExact(ds)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Errorf("query %d (%s): count %v, want %v", i, w.Queries[i].String(), got, want[i])
		}
	}
}
