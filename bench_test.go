// Package secreta's root benchmark suite regenerates every experiment of
// DESIGN.md section 3 (E1-E10) as a testing.B benchmark, so
// `go test -bench=. -benchmem` reproduces the paper's analytical outputs
// end to end. The printed harness with full tables is cmd/secreta-bench;
// these benches measure the same code paths and report the headline metric
// of each experiment via b.ReportMetric.
package secreta

import (
	"fmt"
	"runtime"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/engine"
	"secreta/internal/experiment"
	"secreta/internal/gen"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/lattice"
	"secreta/internal/metrics"
	"secreta/internal/policy"
	"secreta/internal/privacy"
	"secreta/internal/query"
	"secreta/internal/rt"
)

type fixture struct {
	ds *dataset.Dataset
	hs generalize.Set
	ih *hierarchy.Hierarchy
	w  *query.Workload
}

func load(b *testing.B, records int) *fixture {
	b.Helper()
	ds := gen.Census(gen.Config{Records: records, Items: 24, Seed: 42})
	hs, err := gen.Hierarchies(ds, 4)
	if err != nil {
		b.Fatal(err)
	}
	ih, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		b.Fatal(err)
	}
	w, err := query.Generate(ds, query.GenOptions{Queries: 60, Dims: 2, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	return &fixture{ds: ds, hs: hs, ih: ih, w: w}
}

func (f *fixture) rtConfig() engine.Config {
	return engine.Config{
		Mode: engine.RT, RelAlgo: "cluster", TransAlgo: "apriori", Flavor: rt.RMerge,
		K: 10, M: 2, Delta: 0.2,
		Hierarchies: f.hs, ItemHierarchy: f.ih, Workload: f.w,
	}
}

// BenchmarkE1Histograms: Dataset Editor histograms (Fig. 2).
func BenchmarkE1Histograms(b *testing.B) {
	f := load(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a := range f.ds.Attrs {
			_ = f.ds.Histogram(a)
		}
		_ = f.ds.ItemHistogram()
	}
}

// BenchmarkE2AREvsDelta: ARE vs delta sweep (Fig. 3a).
func BenchmarkE2AREvsDelta(b *testing.B) {
	f := load(b, 300)
	sweep := experiment.Sweep{Param: "delta", Start: 0, End: 0.4, Step: 0.2}
	b.ResetTimer()
	var last *experiment.Series
	for i := 0; i < b.N; i++ {
		s, err := experiment.VaryingRun(f.ds, f.rtConfig(), sweep, 0)
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	if n := len(last.Points); n > 0 {
		b.ReportMetric(last.Points[n-1].Indicators.ARE, "ARE@maxdelta")
	}
}

// BenchmarkE3Phases: one RT run with phase breakdown (Fig. 3b).
func BenchmarkE3Phases(b *testing.B) {
	f := load(b, 300)
	b.ResetTimer()
	var res *engine.Result
	for i := 0; i < b.N; i++ {
		res = engine.Run(f.ds, f.rtConfig())
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
	for _, p := range res.Phases {
		b.ReportMetric(p.Duration.Seconds()*1000, p.Name+"_ms")
	}
}

// BenchmarkE4GenFreq: generalized value frequencies (Fig. 3c).
func BenchmarkE4GenFreq(b *testing.B) {
	f := load(b, 300)
	res := engine.Run(f.ds, f.rtConfig())
	if res.Err != nil {
		b.Fatal(res.Err)
	}
	ai := f.ds.AttrIndex("Age")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = metrics.GeneralizedFrequencies(res.Anonymized, ai)
	}
}

// BenchmarkE5ItemError: item frequency error (Fig. 3d).
func BenchmarkE5ItemError(b *testing.B) {
	f := load(b, 300)
	res := engine.Run(f.ds, f.rtConfig())
	if res.Err != nil {
		b.Fatal(res.Err)
	}
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		ves := metrics.ItemFrequencyError(f.ds, res.Anonymized, f.ih)
		mean = 0
		for _, ve := range ves {
			mean += ve.RelError
		}
		mean /= float64(len(ves))
	}
	b.ReportMetric(mean, "mean_relerr")
}

// BenchmarkE6CompareK: comparison mode, two configurations vs k (Fig. 4).
func BenchmarkE6CompareK(b *testing.B) {
	f := load(b, 300)
	c1 := f.rtConfig()
	c1.Label = "cluster+apriori/Rmerger"
	c2 := f.rtConfig()
	c2.Flavor = rt.TMerge
	c2.Label = "cluster+apriori/Tmerger"
	sweep := experiment.Sweep{Param: "k", Start: 5, End: 15, Step: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Compare(f.ds, []engine.Config{c1, c2}, sweep, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7Matrix: all 20 relational x transaction combinations.
func BenchmarkE7Matrix(b *testing.B) {
	f := load(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok := 0
		for _, rel := range rt.RelationalAlgos {
			for _, tra := range rt.TransactionAlgos {
				cfg := f.rtConfig()
				cfg.RelAlgo, cfg.TransAlgo, cfg.K = rel, tra, 4
				cfg.Workload = nil
				res := engine.Run(f.ds, cfg)
				if res.Err != nil {
					b.Fatalf("%s+%s: %v", rel, tra, res.Err)
				}
				if res.Indicators.KAnonymous && res.Indicators.KMAnonymous {
					ok++
				}
			}
		}
		if ok != 20 {
			b.Fatalf("only %d/20 combinations satisfied privacy", ok)
		}
	}
}

// BenchmarkE8Workers: evaluator scalability with worker count.
func BenchmarkE8Workers(b *testing.B) {
	f := load(b, 300)
	var cfgs []engine.Config
	for k := 2; k <= 16; k += 2 {
		c := f.rtConfig()
		c.K = k
		c.Workload = nil
		cfgs = append(cfgs, c)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			if p := runtime.GOMAXPROCS(0); p < workers {
				// On a small box the extra goroutines just timeslice one
				// core; the numbers would measure the scheduler, not the
				// evaluator. Skip loudly so the harness records why.
				b.Skipf("GOMAXPROCS=%d < workers=%d: scaling not measurable on this box", p, workers)
			}
			for i := 0; i < b.N; i++ {
				for _, r := range engine.RunAll(f.ds, cfgs, workers) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkE9RelationalK: the four relational algorithms across k.
func BenchmarkE9RelationalK(b *testing.B) {
	f := load(b, 300)
	for _, algo := range rt.RelationalAlgos {
		b.Run(algo, func(b *testing.B) {
			var gcp float64
			for i := 0; i < b.N; i++ {
				res := engine.Run(f.ds, engine.Config{
					Mode: engine.Relational, Algorithm: algo, K: 10,
					Hierarchies: f.hs,
				})
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				gcp = res.Indicators.GCP
			}
			b.ReportMetric(gcp, "GCP")
		})
	}
}

// BenchmarkE10TransactionK: the five transaction algorithms across k.
func BenchmarkE10TransactionK(b *testing.B) {
	f := load(b, 300)
	pol := &policy.Policy{
		Privacy: policy.PrivacyAllItems(f.ds),
		Utility: policy.UtilityTop(f.ds),
	}
	for _, algo := range rt.TransactionAlgos {
		b.Run(algo, func(b *testing.B) {
			var loss float64
			for i := 0; i < b.N; i++ {
				res := engine.Run(f.ds, engine.Config{
					Mode: engine.Transactional, Algorithm: algo, K: 10, M: 2,
					ItemHierarchy: f.ih, Policy: pol,
				})
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				loss = res.Indicators.TransactionGCP
			}
			b.ReportMetric(loss, "tGCP")
		})
	}
}

// --- Ablation benches (design choices recorded in DESIGN.md / EXPERIMENTS.md) ---

// BenchmarkAblationMergeGate contrasts the gated merge policy (a merge must
// strictly reduce k^m violations) against ungated merging, which cascades
// into a single class.
func BenchmarkAblationMergeGate(b *testing.B) {
	f := load(b, 600)
	for _, tc := range []struct {
		name    string
		ungated bool
	}{{"gated", false}, {"ungated", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var gcp float64
			for i := 0; i < b.N; i++ {
				res, err := rt.Anonymize(f.ds, rt.Options{
					K: 10, M: 2, Delta: 0.1,
					Hierarchies: f.hs, ItemHierarchy: f.ih,
					RelAlgo: "cluster", TransAlgo: "apriori",
					Flavor: rt.RMerge, UngatedMerges: tc.ungated,
				})
				if err != nil {
					b.Fatal(err)
				}
				g, err := metrics.GCP(res.Anonymized, f.hs, mustQIs(b, f.ds))
				if err != nil {
					b.Fatal(err)
				}
				gcp = g
			}
			b.ReportMetric(gcp, "GCP")
		})
	}
}

// BenchmarkAblationIncognitoNaive contrasts Incognito's pruned search with
// an exhaustive lattice scan that checks k-anonymity at every node.
func BenchmarkAblationIncognitoNaive(b *testing.B) {
	f := load(b, 300)
	qis := mustQIs(b, f.ds)
	hh, err := f.hs.ForQIs(f.ds, qis)
	if err != nil {
		b.Fatal(err)
	}
	heights := make([]int, len(qis))
	for i, h := range hh {
		heights[i] = h.Height()
	}
	b.Run("incognito", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := engine.Run(f.ds, engine.Config{
				Mode: engine.Relational, Algorithm: "incognito", K: 10,
				Hierarchies: f.hs,
			})
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})
	b.Run("naive-scan", func(b *testing.B) {
		lat, err := lattice.New(heights)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			found := 0
			lat.Walk(func(node []int) bool {
				cand, err := generalize.FullDomain(f.ds, f.hs, qis, node)
				if err != nil {
					b.Fatal(err)
				}
				if privacy.IsKAnonymous(cand, qis, 10) {
					found++
				}
				return true
			})
			if found == 0 {
				b.Fatal("no k-anonymous node")
			}
		}
	})
}

// BenchmarkExtensionRho measures the rho-uncertainty extension algorithm.
func BenchmarkExtensionRho(b *testing.B) {
	f := load(b, 600)
	h := f.ds.ItemHistogram()
	sens := []string{h[0].Value, h[1].Value, h[2].Value}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := engine.Run(f.ds, engine.Config{
			Mode: engine.Transactional, Algorithm: "rho",
			Rho: 0.5, M: 2, K: 1, Sensitive: sens,
		})
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

func mustQIs(b *testing.B, ds *dataset.Dataset) []int {
	b.Helper()
	qis, err := ds.QIIndices(nil)
	if err != nil {
		b.Fatal(err)
	}
	return qis
}
